"""Property-based invariants of the queueing engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.engine import EngineConfig, QueueingEngine
from tests.conftest import make_tiny_graph

GRAPH = make_tiny_graph()


def quiet_engine(seed=0, **overrides):
    cfg = dict(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0)
    cfg.update(overrides)
    return QueueingEngine(GRAPH, EngineConfig(**cfg), seed=seed)


alloc_strategy = st.lists(
    st.floats(min_value=0.2, max_value=8.0), min_size=4, max_size=4
).map(np.array)

rate_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=300.0),
    st.floats(min_value=0.0, max_value=60.0),
).map(np.array)


class TestEngineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(alloc_strategy, rate_strategy, st.integers(0, 1000))
    def test_telemetry_always_finite_and_nonnegative(self, alloc, rates, seed):
        eng = quiet_engine(seed=seed)
        for _ in range(3):
            stats = eng.run_interval(alloc, rates)
        assert np.isfinite(stats.latency_ms).all()
        assert np.all(stats.latency_ms >= 0)
        assert np.all(stats.cpu_util >= 0) and np.all(stats.cpu_util <= 1)
        assert np.all(stats.queue >= 0)
        assert np.all(stats.rss_mb > 0)
        assert stats.drops >= 0

    @settings(max_examples=25, deadline=None)
    @given(alloc_strategy, rate_strategy, st.integers(0, 1000))
    def test_percentiles_sorted(self, alloc, rates, seed):
        eng = quiet_engine(seed=seed)
        stats = eng.run_interval(alloc, rates)
        assert np.all(np.diff(stats.latency_ms) >= -1e-9)

    @settings(max_examples=25, deadline=None)
    @given(alloc_strategy, rate_strategy, st.integers(0, 1000))
    def test_latency_bounded_by_timeout(self, alloc, rates, seed):
        eng = quiet_engine(seed=seed)
        for _ in range(4):
            stats = eng.run_interval(alloc, rates)
        assert stats.p99_ms <= eng.config.drop_latency * 1000 + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(rate_strategy, st.integers(0, 1000))
    def test_queue_conservation(self, rates, seed):
        """Queue delta equals arrivals - completions - drops per tier
        (flow conservation in the fluid model)."""
        eng = quiet_engine(seed=seed)
        alloc = np.full(4, 0.5)
        before = eng.queue.copy()
        stats = eng.run_interval(alloc, rates)
        arrived = stats.rx_pps / np.array([t.pkts_per_req for t in GRAPH.tiers])
        completed = stats.tx_pps / np.array([t.pkts_per_req for t in GRAPH.tiers])
        np.testing.assert_allclose(
            eng.queue, before + arrived - completed - 0.0, atol=stats.drops + 1e-6
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_seed_same_trajectory(self, seed):
        rates = np.array([120.0, 12.0])
        alloc = np.full(4, 1.0)
        a, b = quiet_engine(seed=seed), quiet_engine(seed=seed)
        for _ in range(3):
            sa = a.run_interval(alloc, rates)
            sb = b.run_interval(alloc, rates)
        np.testing.assert_allclose(sa.latency_ms, sb.latency_ms)
        np.testing.assert_allclose(sa.queue, sb.queue)
