"""Unit tests for tier specifications."""

import pytest

from repro.sim.tier import TierKind, TierSpec


class TestTierSpecDefaults:
    def test_kind_defaults_applied(self):
        tier = TierSpec("t", kind=TierKind.CACHE)
        assert tier.cpu_per_req == pytest.approx(0.0008)
        assert tier.base_latency == pytest.approx(0.0005)
        assert tier.conc_per_core > 0
        assert tier.soft_throughput > 0

    def test_explicit_values_override_defaults(self):
        tier = TierSpec("t", kind=TierKind.ML, cpu_per_req=0.1, base_latency=0.01)
        assert tier.cpu_per_req == 0.1
        assert tier.base_latency == 0.01

    @pytest.mark.parametrize("kind", list(TierKind))
    def test_all_kinds_have_defaults(self, kind):
        tier = TierSpec("t", kind=kind)
        assert tier.cpu_per_req > 0
        assert tier.base_latency >= 0


class TestTierSpecValidation:
    def test_rejects_nonpositive_cpu(self):
        with pytest.raises(ValueError, match="cpu_per_req"):
            TierSpec("t", cpu_per_req=0.0)

    def test_rejects_negative_base_latency(self):
        with pytest.raises(ValueError, match="base_latency"):
            TierSpec("t", base_latency=-1.0)

    def test_rejects_bad_cpu_bounds(self):
        with pytest.raises(ValueError, match="min_cpu"):
            TierSpec("t", min_cpu=2.0, max_cpu=1.0)
        with pytest.raises(ValueError, match="min_cpu"):
            TierSpec("t", min_cpu=0.0)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            TierSpec("t", replicas=0)

    def test_rejects_nonpositive_soft_throughput(self):
        with pytest.raises(ValueError, match="soft_throughput"):
            TierSpec("t", soft_throughput=0.0)


class TestTierSpecCopies:
    def test_with_replicas_scales_ceiling(self):
        tier = TierSpec("t", max_cpu=4.0)
        doubled = tier.with_replicas(3)
        assert doubled.replicas == 3
        assert doubled.total_max_cpu == pytest.approx(12.0)
        assert doubled.name == tier.name
        assert doubled.cpu_per_req == tier.cpu_per_req

    def test_scaled_multiplies_demand(self):
        tier = TierSpec("t", cpu_per_req=0.01, base_latency=0.002)
        heavier = tier.scaled(cpu_scale=1.5, base_scale=2.0)
        assert heavier.cpu_per_req == pytest.approx(0.015)
        assert heavier.base_latency == pytest.approx(0.004)
        # unrelated fields preserved
        assert heavier.soft_throughput == tier.soft_throughput
        assert heavier.min_cpu == tier.min_cpu

    def test_copies_are_frozen(self):
        tier = TierSpec("t")
        with pytest.raises(AttributeError):
            tier.max_cpu = 100.0
