"""Unit tests for the credit economy (repro.tenancy.credit)."""

import pytest

from repro.tenancy.credit import CreditConfig, CreditLedger


def make_ledger(**config) -> CreditLedger:
    return CreditLedger.from_qos(
        {"a": 500.0, "b": 200.0}, CreditConfig(**config)
    )


class TestCreditConfig:
    def test_defaults_valid(self):
        CreditConfig()

    def test_rejects_bad_clamps(self):
        with pytest.raises(ValueError):
            CreditConfig(min_credit=0.0)
        with pytest.raises(ValueError):
            CreditConfig(min_credit=2.0, max_credit=1.0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            CreditConfig(violation_decay=0.0)
        with pytest.raises(ValueError):
            CreditConfig(violation_decay=1.5)


class TestCreditLedger:
    def test_tightness_normalized_to_unit_mean(self):
        ledger = make_ledger()
        mean = sum(ledger.tightness.values()) / len(ledger.tightness)
        assert mean == pytest.approx(1.0)
        # b's 200 ms target is tighter than a's 500 ms.
        assert ledger.tightness["b"] > ledger.tightness["a"]

    def test_opening_balance(self):
        ledger = make_ledger(base_credit=2.0)
        assert ledger.credit("a") == 2.0
        assert ledger.snapshot() == {"a": 2.0, "b": 2.0}

    def test_accrual_scales_with_tightness(self):
        ledger = make_ledger()
        ledger.settle()
        assert ledger.credit("b") > ledger.credit("a") > 1.0

    def test_violation_decays(self):
        ledger = make_ledger(accrual_rate=0.0)
        ledger.settle(violating=["a"])
        assert ledger.credit("a") < 1.0
        assert ledger.credit("b") == pytest.approx(1.0)

    def test_overdraw_spends(self):
        ledger = make_ledger(accrual_rate=0.0, spend_rate=0.01)
        ledger.settle(overdraw={"a": 10.0})
        assert ledger.credit("a") == pytest.approx(0.9)
        assert ledger.credit("b") == pytest.approx(1.0)

    def test_negative_overdraw_ignored(self):
        ledger = make_ledger(accrual_rate=0.0)
        ledger.settle(overdraw={"a": -5.0})
        assert ledger.credit("a") == pytest.approx(1.0)

    def test_clamped_to_bounds(self):
        ledger = make_ledger(accrual_rate=0.0, spend_rate=1.0,
                             min_credit=0.2, max_credit=1.5)
        for _ in range(10):
            ledger.settle(overdraw={"a": 100.0})
        assert ledger.credit("a") == pytest.approx(0.2)
        ledger2 = make_ledger(accrual_rate=5.0, max_credit=1.5)
        for _ in range(10):
            ledger2.settle()
        assert ledger2.credit("a") == pytest.approx(1.5)

    def test_urgency_boost(self):
        ledger = make_ledger(urgency_boost=3.0)
        assert ledger.effective_weight("a", violating=True) == pytest.approx(3.0)
        assert ledger.effective_weight("a", violating=False) == pytest.approx(1.0)

    def test_reset_restores_opening_balance(self):
        ledger = make_ledger()
        ledger.settle(violating=["a"], overdraw={"b": 50.0})
        ledger.reset()
        assert ledger.snapshot() == {"a": 1.0, "b": 1.0}

    def test_empty_ledger_rejected(self):
        with pytest.raises(ValueError):
            CreditLedger.from_qos({})
        with pytest.raises(ValueError):
            CreditLedger({})
