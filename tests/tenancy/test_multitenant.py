"""Multi-tenant simulator + harness: lockstep behaviour, determinism,
and fault isolation across tenants.

The determinism suite asserts the subsystem's contract: multi-tenant
traces are bit-identical run-to-run, serial vs pooled (``jobs=2``, warm
and cold), and a chaos profile injected into one tenant leaves every
other tenant's telemetry bitwise untouched when the cluster is
uncontended.
"""

import dataclasses

import numpy as np
import pytest

from repro.harness.multitenant import (
    default_tenant_specs,
    format_multitenant_report,
    run_multitenant_episode,
    sweep_multitenant,
)
from repro.tenancy import (
    CreditArbiter,
    MultiTenantSimulator,
    TenantSpec,
    build_tenant,
)
from repro.workload.patterns import ConstantLoad, StepLoad

#: Two fast tenants with overlapping step peaks; tight enough budgets
#: make them contend without training any model.
SPECS = [
    TenantSpec("social", "social_network",
               StepLoad(((0, 150), (15, 400), (40, 150))),
               manager="autoscale-cons"),
    TenantSpec("hotel", "hotel_reservation",
               StepLoad(((0, 1200), (20, 3000), (45, 1200))),
               manager="autoscale-cons"),
]
DURATION = 55
BUDGET = 170.0


def build_sim(budget=BUDGET, seed=0, specs=SPECS) -> MultiTenantSimulator:
    tenants = [build_tenant(s, budget_cpu=budget, seed=seed + 7919 * (i + 1))
               for i, s in enumerate(specs)]
    arbiter = CreditArbiter(
        budget, {t.name: t.qos.latency_ms for t in tenants}, seed=seed + 555
    )
    return MultiTenantSimulator(tenants, arbiter)


def telemetry_fingerprint(result, tenant: str):
    t = next(t for t in result.tenants if t.tenant == tenant)
    return (t.telemetry.latency_matrix(), t.telemetry.alloc_matrix(),
            t.telemetry.rps_series())


class TestMultiTenantSimulator:
    def test_duplicate_tenant_names_rejected(self):
        tenants = [build_tenant(SPECS[0], BUDGET, seed=1),
                   build_tenant(dataclasses.replace(SPECS[1], name="social"),
                                BUDGET, seed=2)]
        arbiter = CreditArbiter(BUDGET, {"social": 500.0}, seed=0)
        with pytest.raises(ValueError, match="unique"):
            MultiTenantSimulator(tenants, arbiter)

    def test_budget_below_floors_rejected_at_init(self):
        tenants = [build_tenant(s, budget_cpu=50.0, seed=i) for i, s in
                   enumerate(SPECS)]
        arbiter = CreditArbiter(
            10.0, {t.name: t.qos.latency_ms for t in tenants}
        )
        with pytest.raises(ValueError, match="floors"):
            MultiTenantSimulator(tenants, arbiter)

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantSimulator([], CreditArbiter(100.0, {"a": 500.0}))

    def test_lockstep_advances_all_tenants(self):
        sim = build_sim()
        decisions = sim.run(12)
        assert len(decisions) == 12
        for t in sim.tenants:
            assert len(t.cluster.telemetry) == 12

    def test_grants_never_exceed_budget(self):
        sim = build_sim(budget=150.0)
        for d in sim.run(DURATION):
            assert d.total_granted <= 150.0 + 1e-6

    def test_rerun_is_bit_identical(self):
        sim = build_sim(seed=3)
        sim.run(30)
        first = [t.cluster.telemetry.latency_matrix() for t in sim.tenants]
        sim.run(30)
        second = [t.cluster.telemetry.latency_matrix() for t in sim.tenants]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestRunMultiTenantEpisode:
    def test_scores_every_tenant(self):
        result = run_multitenant_episode(
            SPECS, BUDGET, DURATION, seed=0, arbiter="credit", warmup=5
        )
        assert {t.tenant for t in result.tenants} == {"social", "hotel"}
        for t in result.tenants:
            assert 0.0 <= t.qos_fraction <= 1.0
            assert t.mean_total_cpu > 0
        assert result.mean_cluster_cpu <= BUDGET + 1e-6
        assert sum(result.mode_counts.values()) == DURATION - 5

    def test_contention_occurs_in_the_scenario(self):
        result = run_multitenant_episode(
            SPECS, BUDGET, DURATION, seed=0, arbiter="credit", warmup=5
        )
        assert result.contended_fraction > 0

    def test_static_arm_pins_each_slice(self):
        result = run_multitenant_episode(
            SPECS, BUDGET, DURATION, seed=0, arbiter="static", warmup=5
        )
        assert result.mode_counts == {"static": DURATION - 5}
        for t in result.tenants:
            assert t.manager_name == "static"
            assert t.mean_total_cpu <= BUDGET / len(SPECS) + 1e-6

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValueError, match="arbiter"):
            run_multitenant_episode(SPECS, BUDGET, DURATION, arbiter="drf")

    def test_three_heterogeneous_tenants_share_one_cluster(self):
        specs = default_tenant_specs(manager="autoscale-cons")
        result = run_multitenant_episode(
            specs, 240.0, 40, seed=0, arbiter="credit", warmup=5
        )
        assert {t.app for t in result.tenants} == {
            "social_network", "hotel_reservation", "media_service"
        }
        assert result.mean_cluster_cpu <= 240.0 + 1e-6


class TestDeterminism:
    def test_same_seed_same_episode(self):
        a = run_multitenant_episode(SPECS, BUDGET, DURATION, seed=5)
        b = run_multitenant_episode(SPECS, BUDGET, DURATION, seed=5)
        for name in ("social", "hotel"):
            for x, y in zip(telemetry_fingerprint(a, name),
                            telemetry_fingerprint(b, name)):
                assert np.array_equal(x, y)
        assert a.mode_counts == b.mode_counts

    def test_serial_vs_pooled_bitwise_identical(self, monkeypatch):
        serial = sweep_multitenant(
            SPECS, BUDGET, DURATION, seeds=[0, 9], jobs=1
        )
        warm = sweep_multitenant(
            SPECS, BUDGET, DURATION, seeds=[0, 9], jobs=2
        )
        monkeypatch.setenv("REPRO_WARM_POOL", "0")
        cold = sweep_multitenant(
            SPECS, BUDGET, DURATION, seeds=[0, 9], jobs=2
        )
        for other in (warm, cold):
            assert len(other) == len(serial)
            for r_serial, r_other in zip(serial, other):
                assert r_serial.arbiter == r_other.arbiter
                assert r_serial.mode_counts == r_other.mode_counts
                for name in ("social", "hotel"):
                    for x, y in zip(
                        telemetry_fingerprint(r_serial, name),
                        telemetry_fingerprint(r_other, name),
                    ):
                        assert np.array_equal(x, y)

    def test_chaos_on_one_tenant_does_not_perturb_the_other(self):
        # Ample budget: the arbiter always grants in full, so tenant
        # coupling could only come from leaked RNG state — which the
        # determinism contract forbids.
        ample = 900.0
        quiet = [
            TenantSpec("victim", "social_network", ConstantLoad(200),
                       manager="autoscale-cons"),
            TenantSpec("bystander", "hotel_reservation", ConstantLoad(1500),
                       manager="autoscale-cons"),
        ]
        chaotic = [dataclasses.replace(quiet[0], fault_profile="chaos"),
                   quiet[1]]
        base = run_multitenant_episode(quiet, ample, 40, seed=2)
        faulted = run_multitenant_episode(chaotic, ample, 40, seed=2)
        # The faulted tenant's own telemetry must actually differ...
        assert not all(
            np.array_equal(x, y) for x, y in zip(
                telemetry_fingerprint(base, "victim"),
                telemetry_fingerprint(faulted, "victim"),
            )
        )
        # ...while the bystander's streams are bitwise untouched.
        for x, y in zip(telemetry_fingerprint(base, "bystander"),
                        telemetry_fingerprint(faulted, "bystander")):
            assert np.array_equal(x, y)


class TestReporting:
    def test_report_renders_both_tables(self):
        results = sweep_multitenant(SPECS, BUDGET, 25, seeds=[0], warmup=5)
        text = format_multitenant_report(results)
        assert "credit" in text and "static" in text
        assert "social" in text and "hotel" in text
        assert "P(QoS)" in text
