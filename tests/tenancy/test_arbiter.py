"""Unit tests for the credit arbiter (repro.tenancy.arbiter)."""

import numpy as np
import pytest

from repro.obs.audit import ArbitrationRecord, record_from_json
from repro.tenancy.arbiter import (
    QUANTUM_CPU,
    AllocationRequest,
    CreditArbiter,
    StaticPartitionArbiter,
    _knapsack_admit,
    _water_fill,
)
from repro.tenancy.credit import CreditConfig

QOS = {"a": 500.0, "b": 200.0, "c": 300.0}


def req(tenant, demand, keep=None, floor=2.0, violating=False):
    return AllocationRequest(
        tenant=tenant,
        demand=demand,
        keep=demand if keep is None else keep,
        floor=floor,
        violating=violating,
    )


def make_arbiter(budget=100.0, seed=0, **config) -> CreditArbiter:
    cfg = CreditConfig(**config) if config else None
    return CreditArbiter(budget, QOS, config=cfg, seed=seed)


class TestWaterFill:
    def test_splits_by_weight_when_uncapped(self):
        grant = _water_fill(np.array([100.0, 100.0]), np.array([1.0, 3.0]), 40.0)
        assert grant == pytest.approx([10.0, 30.0])

    def test_caps_bind_and_surplus_reflows(self):
        grant = _water_fill(np.array([5.0, 100.0]), np.array([1.0, 1.0]), 40.0)
        assert grant == pytest.approx([5.0, 35.0])

    def test_conserves_total(self):
        caps = np.array([10.0, 20.0, 30.0])
        grant = _water_fill(caps, np.array([1.0, 2.0, 0.5]), 45.0)
        assert grant.sum() == pytest.approx(45.0)
        assert np.all(grant <= caps + 1e-9)

    def test_total_exceeding_caps_saturates(self):
        caps = np.array([10.0, 20.0])
        grant = _water_fill(caps, np.array([1.0, 1.0]), 100.0)
        assert grant == pytest.approx(caps)


class TestKnapsackAdmit:
    def test_prefers_higher_value(self):
        admit = _knapsack_admit(
            np.array([10.0, 10.0]), np.array([1.0, 5.0]), 10.0
        )
        assert admit.tolist() == [False, True]

    def test_packs_multiple_when_they_fit(self):
        admit = _knapsack_admit(
            np.array([4.0, 4.0, 10.0]), np.array([1.0, 1.0, 1.5]), 9.0
        )
        assert admit.tolist() == [True, True, False]

    def test_atomic_deltas_never_split(self):
        admit = _knapsack_admit(np.array([12.0]), np.array([1.0]), 10.0)
        assert admit.tolist() == [False]

    def test_zero_capacity_admits_nothing(self):
        admit = _knapsack_admit(np.array([1.0]), np.array([1.0]), 0.0)
        assert admit.tolist() == [False]

    def test_first_wins_on_value_tie(self):
        admit = _knapsack_admit(
            np.array([QUANTUM_CPU, QUANTUM_CPU]), np.array([1.0, 1.0]),
            QUANTUM_CPU,
        )
        assert admit.tolist() == [True, False]


class TestCreditArbiter:
    def test_uncontended_grants_everything(self):
        arb = make_arbiter(budget=100.0)
        d = arb.arbitrate([req("a", 30.0), req("b", 40.0), req("c", 20.0)],
                          interval=0, time=0.0)
        assert d.mode == "uncontended" and not d.contended
        assert d.grants["a"].grant == pytest.approx(30.0)
        assert d.total_granted == pytest.approx(90.0)

    def test_knapsack_mode_holds_keeps_and_admits_whole_deltas(self):
        arb = make_arbiter(budget=100.0)
        d = arb.arbitrate(
            [req("a", 60.0, keep=40.0), req("b", 60.0, keep=40.0)],
            interval=0, time=0.0,
        )
        assert d.mode == "knapsack" and d.contended
        grants = sorted(g.grant for g in d.grants.values())
        # One tenant's +20 scale-up fits the 20 leftover cores; the
        # other holds at keep — no partial scale-up.
        assert grants == pytest.approx([40.0, 60.0])

    def test_drf_mode_waterfills_between_floor_and_keep(self):
        arb = make_arbiter(budget=50.0)
        d = arb.arbitrate(
            [req("a", 60.0, keep=60.0), req("b", 60.0, keep=60.0)],
            interval=0, time=0.0,
        )
        assert d.mode == "weighted-drf" and d.contended
        assert d.total_granted == pytest.approx(50.0)
        for g in d.grants.values():
            assert g.grant >= 2.0 - 1e-9

    def test_violating_tenant_wins_contention(self):
        arb = make_arbiter(budget=100.0, urgency_boost=10.0)
        # Leftover after keeps is 20 cores; each +20 delta fits alone,
        # so the knapsack must pick the (boosted) violating tenant.
        d = arb.arbitrate(
            [req("a", 60.0, keep=40.0, violating=True),
             req("b", 60.0, keep=40.0)],
            interval=0, time=0.0,
        )
        assert d.grants["a"].grant == pytest.approx(60.0)
        assert d.grants["b"].grant == pytest.approx(40.0)

    def test_floors_always_respected_under_drf(self):
        arb = make_arbiter(budget=30.0)
        d = arb.arbitrate(
            [req("a", 100.0, floor=10.0), req("b", 100.0, floor=5.0),
             req("c", 100.0, floor=5.0)],
            interval=0, time=0.0,
        )
        assert d.grants["a"].grant >= 10.0 - 1e-9
        assert d.grants["b"].grant >= 5.0 - 1e-9

    def test_budget_below_floors_raises(self):
        arb = make_arbiter(budget=10.0)
        with pytest.raises(ValueError, match="floors"):
            arb.arbitrate([req("a", 20.0, floor=8.0), req("b", 20.0, floor=8.0)],
                          interval=0, time=0.0)

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            make_arbiter().arbitrate([], interval=0, time=0.0)

    def test_credits_settle_each_interval(self):
        arb = make_arbiter(budget=200.0)
        d0 = arb.arbitrate([req("a", 30.0), req("b", 30.0, violating=True),
                            req("c", 30.0)], interval=0, time=0.0)
        # b accrues fastest (tightest QoS) but decayed for violating.
        assert d0.grants["c"].credit > 1.0
        assert arb.ledger.credit("b") == d0.grants["b"].credit

    def test_same_seed_same_decisions(self):
        reqs = [req("a", 60.0, keep=40.0), req("b", 60.0, keep=40.0),
                req("c", 60.0, keep=40.0)]
        traces = []
        for _ in range(2):
            arb = make_arbiter(budget=140.0, seed=7)
            traces.append([
                tuple(sorted((n, g.grant, g.credit)
                             for n, g in arb.arbitrate(
                                 list(reqs), interval=i, time=float(i)
                             ).grants.items()))
                for i in range(20)
            ])
        assert traces[0] == traces[1]

    def test_reset_restores_rng_and_ledger(self):
        arb = make_arbiter(budget=140.0, seed=3)
        reqs = [req("a", 60.0, keep=40.0), req("b", 60.0, keep=40.0),
                req("c", 60.0, keep=40.0)]
        first = [arb.arbitrate(list(reqs), i, float(i)).grants["a"].grant
                 for i in range(10)]
        arb.reset()
        second = [arb.arbitrate(list(reqs), i, float(i)).grants["a"].grant
                  for i in range(10)]
        assert first == second

    def test_rng_consumed_even_when_uncontended(self):
        # The tie-break draw happens every call, so RNG state does not
        # depend on whether earlier intervals were contended.
        contended_first = make_arbiter(budget=100.0, seed=11)
        contended_first.arbitrate(
            [req("a", 80.0, keep=50.0), req("b", 80.0, keep=50.0)], 0, 0.0)
        quiet_first = make_arbiter(budget=100.0, seed=11)
        quiet_first.arbitrate([req("a", 10.0), req("b", 10.0)], 0, 0.0)
        probe = [req("a", 80.0, keep=50.0), req("b", 80.0, keep=50.0)]
        d1 = contended_first.arbitrate(list(probe), 1, 1.0)
        d2 = quiet_first.arbitrate(list(probe), 1, 1.0)
        assert {n: g.grant for n, g in d1.grants.items()} == \
               {n: g.grant for n, g in d2.grants.items()}


class TestStaticPartitionArbiter:
    def test_equal_slices(self):
        arb = StaticPartitionArbiter(90.0, 3)
        assert arb.slice_cpu == pytest.approx(30.0)
        d = arb.arbitrate([req("a", 50.0), req("b", 10.0), req("c", 30.0)],
                          interval=0, time=0.0)
        assert d.mode == "static" and not d.contended
        assert d.grants["a"].grant == pytest.approx(30.0)
        assert d.grants["b"].grant == pytest.approx(10.0)
        assert d.grants["c"].grant == pytest.approx(30.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StaticPartitionArbiter(0.0, 3)
        with pytest.raises(ValueError):
            StaticPartitionArbiter(90.0, 0)


class TestArbitrationRecord:
    def test_decision_to_record_roundtrips_json(self):
        arb = make_arbiter(budget=70.0)
        d = arb.arbitrate([req("a", 60.0, keep=40.0), req("b", 60.0, keep=40.0),
                           req("c", 10.0)], interval=4, time=4.0)
        r = d.record()
        assert isinstance(r, ArbitrationRecord)
        assert r.tenants == ("a", "b", "c")
        restored = record_from_json(r.to_json())
        assert restored == r

    def test_record_totals_match_decision(self):
        arb = make_arbiter(budget=100.0)
        d = arb.arbitrate([req("a", 30.0), req("b", 20.0)], 0, 0.0)
        r = d.record()
        assert r.total_granted == pytest.approx(d.total_granted)
        assert r.budget_cpu == 100.0
