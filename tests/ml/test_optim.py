"""Optimizer tests: SGD (momentum, weight decay, clipping) and Adam."""

import numpy as np
import pytest

from repro.ml.optim import SGD, Adam, Optimizer


def quadratic_problem(start=5.0):
    """Minimize f(w) = 0.5 * w^2; gradient = w."""
    w = np.array([start])
    g = np.zeros(1)
    return w, g


class TestSGD:
    def test_converges_on_quadratic(self):
        w, g = quadratic_problem()
        opt = SGD([w], [g], lr=0.1, momentum=0.0, weight_decay=0.0, clip=0.0)
        for _ in range(200):
            g[...] = w
            opt.step()
        assert abs(w[0]) < 1e-3

    def test_momentum_accelerates(self):
        histories = {}
        for momentum in (0.0, 0.9):
            w, g = quadratic_problem()
            opt = SGD([w], [g], lr=0.01, momentum=momentum, weight_decay=0.0, clip=0.0)
            for step in range(50):
                g[...] = w
                opt.step()
            histories[momentum] = abs(w[0])
        assert histories[0.9] < histories[0.0]

    def test_weight_decay_shrinks_params(self):
        w = np.array([1.0])
        g = np.zeros(1)
        opt = SGD([w], [g], lr=0.1, momentum=0.0, weight_decay=0.5, clip=0.0)
        opt.step()  # gradient is zero; only decay acts
        assert w[0] < 1.0

    def test_gradient_clipping(self):
        w = np.array([0.0])
        g = np.array([1e6])
        opt = SGD([w], [g], lr=1.0, momentum=0.0, weight_decay=0.0, clip=1.0)
        opt.step()
        assert abs(w[0]) <= 1.0 + 1e-9

    def test_updates_in_place(self):
        w, g = quadratic_problem()
        ref = w
        opt = SGD([w], [g], lr=0.1)
        g[...] = 1.0
        opt.step()
        assert ref is w  # same array object mutated

    def test_param_grad_alignment_checked(self):
        with pytest.raises(ValueError):
            Optimizer([np.zeros(1)], [])


class TestAdam:
    def test_converges_on_quadratic(self):
        w, g = quadratic_problem()
        opt = Adam([w], [g], lr=0.3)
        for _ in range(300):
            g[...] = w
            opt.step()
        assert abs(w[0]) < 1e-2

    def test_scale_invariance_of_first_step(self):
        """Adam's first update magnitude ~= lr regardless of grad scale."""
        results = []
        for scale in (1e-3, 1e3):
            w = np.array([0.0])
            g = np.array([scale])
            opt = Adam([w], [g], lr=0.1)
            opt.step()
            results.append(abs(w[0]))
        # eps in the denominator breaks exact invariance; near-equal.
        assert results[0] == pytest.approx(results[1], rel=1e-4)

    def test_weight_decay(self):
        w = np.array([1.0])
        g = np.zeros(1)
        opt = Adam([w], [g], lr=0.1, weight_decay=1.0)
        opt.step()
        assert w[0] < 1.0

    def test_updates_in_place(self):
        w, g = quadratic_problem()
        ref = w
        opt = Adam([w], [g], lr=0.1)
        for _ in range(3):
            g[...] = 1.0
            opt.step()
        assert ref is w  # same array object mutated

    def test_state_buffers_stable_across_steps(self):
        """Moment estimates and scratch are allocated once, not per step."""
        w, g = quadratic_problem()
        opt = Adam([w], [g], lr=0.1)
        m0, v0 = opt._m[0], opt._v[0]
        for _ in range(5):
            g[...] = w
            opt.step()
        assert opt._m[0] is m0 and opt._v[0] is v0

    def test_in_place_step_matches_formula(self):
        """The buffered update equals the textbook Adam expressions."""
        rng = np.random.default_rng(0)
        w = rng.normal(size=7)
        g = rng.normal(size=7)
        lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
        expected_m = (1 - b1) * g
        expected_v = (1 - b2) * g * g
        expected = w - lr * (expected_m / (1 - b1)) / (
            np.sqrt(expected_v / (1 - b2)) + eps
        )
        opt = Adam([w], [g.copy()], lr=lr, beta1=b1, beta2=b2, eps=eps)
        opt.step()
        np.testing.assert_allclose(w, expected, atol=1e-12)
