"""Metric function tests."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    error_rate,
    false_negative_rate,
    false_positive_rate,
    model_size_kb,
    rmse,
)


class TestRMSE:
    def test_known_value(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == pytest.approx(
            np.sqrt(2.0)
        )

    def test_zero_for_exact(self):
        x = np.arange(10.0)
        assert rmse(x, x) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(4))


class TestClassificationMetrics:
    def setup_method(self):
        self.pred = np.array([1, 1, 0, 0, 1.0])
        self.true = np.array([1, 0, 0, 1, 1.0])

    def test_accuracy(self):
        assert accuracy(self.pred, self.true) == pytest.approx(0.6)
        assert error_rate(self.pred, self.true) == pytest.approx(0.4)

    def test_false_positive_rate(self):
        # one false positive out of five samples
        assert false_positive_rate(self.pred, self.true) == pytest.approx(0.2)

    def test_false_negative_rate(self):
        # one missed violation out of five samples
        assert false_negative_rate(self.pred, self.true) == pytest.approx(0.2)

    def test_empty_inputs(self):
        empty = np.array([])
        assert accuracy(empty, empty) == 1.0
        assert false_positive_rate(empty, empty) == 0.0
        assert false_negative_rate(empty, empty) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(2), np.ones(3))


def test_model_size_kb():
    params = [np.zeros((10, 10)), np.zeros(10)]
    assert model_size_kb(params) == pytest.approx(110 * 4 / 1024.0)
