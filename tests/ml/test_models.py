"""Model-level tests: CNN / MLP / LSTM / multi-task on synthetic data."""

import numpy as np
import pytest

from repro.ml.cnn import CNNConfig, LatencyCNN
from repro.ml.lstm import LatencyLSTM
from repro.ml.mlp import LatencyMLP
from repro.ml.multitask import MultiTaskLoss, MultiTaskNN
from repro.ml.network import Sequential
from repro.ml.layers import Dense, ReLU

N, T, F, M = 6, 4, 6, 5
SMALL = CNNConfig(conv_channels=(4,), rh_embed=16, lh_embed=8, rc_embed=8, latent_dim=16)


def synthetic(n=256, seed=0):
    rng = np.random.default_rng(seed)
    x_rh = rng.normal(size=(n, F, N, T))
    x_lh = rng.normal(size=(n, T, M))
    x_rc = rng.normal(size=(n, N))
    w = rng.normal(size=N)
    signal = x_rh[:, 0].mean(axis=2) @ w + 0.5 * x_rc @ w
    y = np.repeat(signal[:, None], M, axis=1) * 10.0 + 100.0
    return (x_rh, x_lh, x_rc), y


class TestSequential:
    def test_composition(self, rng):
        net = Sequential(Dense(4, 8, rng), ReLU(), Dense(8, 2, rng))
        x = rng.normal(size=(3, 4))
        assert net.forward(x).shape == (3, 2)
        assert len(net.params()) == 4
        assert len(net.grads()) == 4

    def test_backward_flows(self, rng):
        net = Sequential(Dense(4, 8, rng), ReLU(), Dense(8, 2, rng))
        x = rng.normal(size=(3, 4))
        out = net.forward(x)
        dx = net.backward(np.ones_like(out))
        assert dx.shape == x.shape


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LatencyCNN(N, T, F, M, config=SMALL, seed=0),
        lambda: LatencyMLP(N, T, F, M, hidden=(32, 16), seed=0),
        lambda: LatencyLSTM(N, T, F, M, hidden=16, seed=0),
    ],
    ids=["cnn", "mlp", "lstm"],
)
class TestLatencyModels:
    def test_predict_shape(self, factory):
        model = factory()
        inputs, _ = synthetic(16)
        assert model.predict(inputs).shape == (16, M)

    def test_learns_synthetic_signal(self, factory):
        model = factory()
        inputs, y = synthetic(256)
        before = np.sqrt(np.mean((model.predict(inputs) - y) ** 2))
        result = model.fit(inputs, y, epochs=15, lr=0.005, batch_size=64, seed=1)
        after = result.train_rmse_final
        assert after < before * 0.6

    def test_size_kb_positive(self, factory):
        model = factory()
        assert model.size_kb > 0
        assert model.n_params == sum(p.size for p in model.params())


class TestEarlyStopping:
    def test_restores_best_params(self):
        model = LatencyMLP(N, T, F, M, hidden=(16,), seed=0)
        inputs, y = synthetic(128)
        val_inputs, val_y = synthetic(64, seed=9)
        result = model.fit(
            inputs, y, val_inputs, val_y, epochs=30, lr=0.01, patience=3, seed=2
        )
        final = np.sqrt(np.mean((model.predict(val_inputs) - val_y) ** 2))
        assert final == pytest.approx(min(result.val_rmse), rel=1e-6)

    def test_val_history_recorded(self):
        model = LatencyMLP(N, T, F, M, hidden=(16,), seed=0)
        inputs, y = synthetic(64)
        result = model.fit(inputs, y, inputs, y, epochs=3, patience=0, seed=0)
        assert len(result.val_rmse) == result.epochs_run == 3


class TestCNNSpecifics:
    def test_latent_shape(self):
        model = LatencyCNN(N, T, F, M, config=SMALL, seed=0)
        inputs, _ = synthetic(10)
        latent = model.latent(inputs)
        assert latent.shape == (10, SMALL.latent_dim)

    def test_predict_with_latent_consistent(self):
        model = LatencyCNN(N, T, F, M, config=SMALL, seed=0)
        inputs, _ = synthetic(8)
        pred, latent = model.predict_with_latent(inputs)
        np.testing.assert_allclose(pred, model.predict(inputs))
        np.testing.assert_allclose(latent, model.latent(inputs))

    def test_custom_rc_features(self):
        model = LatencyCNN(N, T, F, M, config=SMALL, seed=0, n_rc_features=2 * N)
        rng = np.random.default_rng(0)
        inputs = (
            rng.normal(size=(4, F, N, T)),
            rng.normal(size=(4, T, M)),
            rng.normal(size=(4, 2 * N)),
        )
        assert model.predict(inputs).shape == (4, M)


class TestMultiTask:
    def test_output_layout(self):
        model = MultiTaskNN(N, T, F, M, config=SMALL, seed=0)
        inputs, _ = synthetic(8)
        out = model.predict(inputs)
        assert out.shape == (8, M + 1)
        assert model.predict_latency(inputs).shape == (8, M)
        probs = model.predict_violation_prob(inputs)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_pack_targets(self):
        y_lat = np.ones((4, M))
        y_viol = np.array([0, 1, 0, 1.0])
        packed = MultiTaskNN.pack_targets(y_lat, y_viol)
        assert packed.shape == (4, M + 1)
        np.testing.assert_allclose(packed[:, -1], y_viol)

    def test_joint_training_runs(self):
        model = MultiTaskNN(N, T, F, M, config=SMALL, seed=0)
        inputs, y = synthetic(128)
        y_viol = (y[:, 0] > np.percentile(y[:, 0], 70)).astype(float)
        targets = model.pack_targets(y, y_viol)
        result = model.fit(
            inputs, targets, loss=model.loss(), epochs=5, lr=0.003, seed=0
        )
        assert len(result.train_loss) == 5
        assert result.train_loss[-1] < result.train_loss[0]

    def test_loss_combines_mse_and_bce(self):
        loss = MultiTaskLoss(n_percentiles=M, violation_weight=2.0)
        pred = np.zeros((3, M + 1))
        target = np.concatenate([np.ones((3, M)), np.ones((3, 1))], axis=1)
        value, grad = loss(pred, target)
        assert value > 0
        assert grad.shape == pred.shape


class TestFitInstrumentation:
    def test_epoch_wall_time_recorded(self):
        model = LatencyMLP(N, T, F, M, hidden=(16,), seed=0)
        inputs, y = synthetic(64)
        result = model.fit(inputs, y, epochs=4, batch_size=32, seed=0)
        assert len(result.epoch_time_s) == result.epochs_run == 4
        assert all(t >= 0.0 for t in result.epoch_time_s)

    def test_epoch_times_track_early_stop(self):
        model = LatencyMLP(N, T, F, M, hidden=(16,), seed=0)
        inputs, y = synthetic(64)
        result = model.fit(inputs, y, inputs, y, epochs=30, patience=1, seed=0)
        assert len(result.epoch_time_s) == result.epochs_run

    def test_set_fast_train_toggles_layers(self):
        from repro.ml.layers import Conv2D, LSTMCell

        model = LatencyCNN(N, T, F, M, config=SMALL, seed=0)
        model.set_fast_train(False)
        toggled = [
            layer
            for attr in vars(model).values()
            for layer in (attr.layers if isinstance(attr, Sequential) else [attr])
            if isinstance(layer, (Conv2D, LSTMCell))
        ]
        assert toggled
        assert all(layer.fast_train is False for layer in toggled)
        model.set_fast_train(True)
        assert all(layer.fast_train is True for layer in toggled)

    def test_fast_and_reference_training_losses_match(self):
        """One whole CNN fit per path: im2col/fused vs einsum/loop, same
        data and seed — per-epoch losses agree to float rounding."""
        inputs, y = synthetic(96)

        def fit(fast):
            model = LatencyCNN(N, T, F, M, config=SMALL, seed=0)
            model.set_fast_train(fast)
            return model.fit(inputs, y, epochs=3, batch_size=32, seed=1)

        fast, ref = fit(True), fit(False)
        np.testing.assert_allclose(
            fast.train_loss, ref.train_loss, rtol=0, atol=1e-8
        )
