"""Layer-level tests with numerical gradient checks."""

import numpy as np
import pytest

from repro.ml.layers import (
    Conv2D,
    Dense,
    Flatten,
    LSTMCell,
    ReLU,
    Sigmoid,
    Tanh,
)

EPS = 1e-6
TOL = 1e-4


def numeric_input_grad(layer, x, dout, index):
    xp = x.copy()
    xp[index] += EPS
    plus = (layer.forward(xp) * dout).sum()
    minus = (layer.forward(x) * dout).sum()
    return (plus - minus) / EPS


def check_input_grad(layer, x, indices):
    out = layer.forward(x)
    dout = np.random.default_rng(0).normal(size=out.shape)
    layer.forward(x)
    dx = layer.backward(dout)
    for index in indices:
        num = numeric_input_grad(layer, x, dout, index)
        assert abs(num - dx[index]) < TOL, (index, num, dx[index])


def check_param_grad(layer, x, param_idx, flat_positions):
    out = layer.forward(x)
    dout = np.random.default_rng(1).normal(size=out.shape)
    layer.forward(x)
    layer.backward(dout)
    grads = [g.copy() for g in layer.grads()]
    param = layer.params()[param_idx]
    for pos in flat_positions:
        original = param.flat[pos]
        param.flat[pos] = original + EPS
        plus = (layer.forward(x) * dout).sum()
        param.flat[pos] = original
        minus = (layer.forward(x) * dout).sum()
        num = (plus - minus) / EPS
        assert abs(num - grads[param_idx].flat[pos]) < TOL, (pos, num)


class TestDense:
    def test_forward_shape_and_value(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(5, 3))
        out = layer.forward(x)
        assert out.shape == (5, 2)
        np.testing.assert_allclose(out, x @ layer.W + layer.b)

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        check_input_grad(layer, x, [(0, 0), (5, 3), (2, 1)])

    def test_weight_and_bias_gradients(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        check_param_grad(layer, x, 0, [0, 5, 11])
        check_param_grad(layer, x, 1, [0, 2])

    def test_param_count(self, rng):
        layer = Dense(4, 3, rng)
        assert layer.n_params == 4 * 3 + 3


class TestActivations:
    def test_relu(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[0.0, 0.5], [2.0, 0.0]])
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(dx, [[0.0, 1.0], [1.0, 0.0]])

    def test_sigmoid_range_and_grad(self, rng):
        layer = Sigmoid()
        x = rng.normal(size=(4, 3)) * 5
        out = layer.forward(x)
        assert np.all((out > 0) & (out < 1))
        check_input_grad(layer, x, [(0, 0), (3, 2)])

    def test_sigmoid_extreme_inputs_stable(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[1000.0, -1000.0]]))
        assert np.isfinite(out).all()

    def test_tanh_grad(self, rng):
        layer = Tanh()
        x = rng.normal(size=(4, 3))
        check_input_grad(layer, x, [(1, 1), (2, 0)])

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 5))
        out = layer.forward(x)
        assert out.shape == (3, 40)
        dx = layer.backward(out)
        assert dx.shape == x.shape


class TestConv2D:
    def test_same_padding_shape(self, rng):
        layer = Conv2D(3, 6, 3, rng)
        x = rng.normal(size=(2, 3, 7, 5))
        out = layer.forward(x)
        assert out.shape == (2, 6, 7, 5)

    def test_rejects_even_kernel(self, rng):
        with pytest.raises(ValueError, match="odd"):
            Conv2D(2, 2, 4, rng)

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2D(3, 2, 3, rng)
        with pytest.raises(ValueError, match="channels"):
            layer.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_identity_kernel(self, rng):
        """A kernel with a single center tap reproduces the input."""
        layer = Conv2D(1, 1, 3, rng)
        layer.W[...] = 0.0
        layer.W[0, 1, 1, 0] = 1.0
        layer.b[...] = 0.0
        x = rng.normal(size=(2, 1, 4, 4))
        np.testing.assert_allclose(layer.forward(x)[:, 0], x[:, 0], atol=1e-12)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, rng)
        x = rng.normal(size=(3, 2, 5, 4))
        check_input_grad(layer, x, [(0, 0, 0, 0), (2, 1, 4, 3), (1, 0, 2, 2)])

    def test_weight_gradient(self, rng):
        layer = Conv2D(2, 3, 3, rng)
        x = rng.normal(size=(3, 2, 5, 4))
        check_param_grad(layer, x, 0, [0, 17, 35])
        check_param_grad(layer, x, 1, [0, 2])


class TestLSTM:
    def test_output_shape(self, rng):
        cell = LSTMCell(5, 8, rng)
        x = rng.normal(size=(3, 4, 5))
        out = cell.forward(x)
        assert out.shape == (3, 8)

    def test_input_gradient_bptt(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 3, 3))
        check_input_grad(cell, x, [(0, 0, 0), (1, 2, 2), (0, 1, 1)])

    def test_weight_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 3, 3))
        check_param_grad(cell, x, 0, [0, 25, 60])

    def test_forget_bias_initialized_positive(self, rng):
        cell = LSTMCell(3, 4, rng)
        assert np.all(cell.b[4:8] == 1.0)


class TestConv2DFastPath:
    """im2col training path vs the einsum/tap-loop reference."""

    def _run(self, layer, x, dout, fast):
        layer.fast_train = fast
        out = layer.forward(x, training=True)
        dx = layer.backward(dout)
        return out, dx, layer.dW.copy(), layer.db.copy()

    def test_matches_einsum_forward_and_gradients(self, rng):
        layer = Conv2D(3, 4, 3, rng)
        x = rng.normal(size=(4, 3, 6, 5))
        dout = rng.normal(size=(4, 4, 6, 5))
        out_f, dx_f, dW_f, db_f = self._run(layer, x, dout, fast=True)
        out_r, dx_r, dW_r, db_r = self._run(layer, x, dout, fast=False)
        np.testing.assert_allclose(out_f, out_r, atol=1e-10)
        np.testing.assert_allclose(dx_f, dx_r, atol=1e-10)
        np.testing.assert_allclose(dW_f, dW_r, atol=1e-10)
        np.testing.assert_allclose(db_f, db_r, atol=1e-10)

    def test_matches_einsum_with_5x5_kernel(self, rng):
        layer = Conv2D(2, 3, 5, rng)
        x = rng.normal(size=(3, 2, 9, 7))
        dout = rng.normal(size=(3, 3, 9, 7))
        out_f, dx_f, dW_f, db_f = self._run(layer, x, dout, fast=True)
        out_r, dx_r, dW_r, db_r = self._run(layer, x, dout, fast=False)
        np.testing.assert_allclose(out_f, out_r, atol=1e-10)
        np.testing.assert_allclose(dx_f, dx_r, atol=1e-10)
        np.testing.assert_allclose(dW_f, dW_r, atol=1e-10)
        np.testing.assert_allclose(db_f, db_r, atol=1e-10)

    def test_numeric_input_gradient_on_fast_path(self, rng):
        layer = Conv2D(2, 3, 3, rng)
        layer.fast_train = True
        x = rng.normal(size=(2, 2, 5, 4))
        out = layer.forward(x, training=True)
        dout = np.random.default_rng(0).normal(size=out.shape)
        layer.forward(x, training=True)
        dx = layer.backward(dout)
        for index in [(0, 0, 0, 0), (1, 1, 4, 3), (0, 1, 2, 2)]:
            xp = x.copy()
            xp[index] += EPS
            plus = (layer.forward(xp, training=True) * dout).sum()
            minus = (layer.forward(x, training=True) * dout).sum()
            num = (plus - minus) / EPS
            assert abs(num - dx[index]) < TOL, (index, num, dx[index])

    def test_inference_is_invariant_to_fast_train(self, rng):
        """The decision path (training=False) must stay on einsum and be
        bitwise identical whatever the training toggle says."""
        layer = Conv2D(3, 4, 3, rng)
        x = rng.normal(size=(2, 3, 6, 5))
        layer.fast_train = True
        on = layer.forward(x, training=False)
        layer.fast_train = False
        off = layer.forward(x, training=False)
        assert np.array_equal(on, off)

    def test_backward_follows_forward_mode(self, rng):
        """A training forward then an inference forward leaves backward
        consistent with the most recent (einsum) forward."""
        layer = Conv2D(2, 2, 3, rng)
        x = rng.normal(size=(2, 2, 4, 4))
        dout = rng.normal(size=(2, 2, 4, 4))
        layer.forward(x, training=True)
        layer.forward(x, training=False)
        dx_after_inference = layer.backward(dout)
        layer.fast_train = False
        layer.forward(x, training=True)
        dx_reference = layer.backward(dout)
        np.testing.assert_allclose(dx_after_inference, dx_reference, atol=1e-12)


class TestLSTMFastPath:
    """Fused single-GEMM gate projections vs the per-gate reference."""

    def _run(self, cell, x, fast):
        cell.fast_train = fast
        out = cell.forward(x)
        dout = np.random.default_rng(2).normal(size=out.shape)
        dx = cell.backward(dout)
        return out, dx, cell.dW.copy(), cell.db.copy()

    def test_matches_reference(self, rng):
        cell = LSTMCell(5, 8, rng)
        x = rng.normal(size=(4, 6, 5))
        out_f, dx_f, dW_f, db_f = self._run(cell, x, fast=True)
        out_r, dx_r, dW_r, db_r = self._run(cell, x, fast=False)
        np.testing.assert_allclose(out_f, out_r, atol=1e-10)
        np.testing.assert_allclose(dx_f, dx_r, atol=1e-10)
        np.testing.assert_allclose(dW_f, dW_r, atol=1e-10)
        np.testing.assert_allclose(db_f, db_r, atol=1e-10)

    def test_matches_reference_single_timestep(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 1, 3))
        out_f, dx_f, dW_f, db_f = self._run(cell, x, fast=True)
        out_r, dx_r, dW_r, db_r = self._run(cell, x, fast=False)
        np.testing.assert_allclose(out_f, out_r, atol=1e-10)
        np.testing.assert_allclose(dx_f, dx_r, atol=1e-10)
        np.testing.assert_allclose(dW_f, dW_r, atol=1e-10)
        np.testing.assert_allclose(db_f, db_r, atol=1e-10)

    def test_buffers_survive_batch_size_change(self, rng):
        """Preallocated gate buffers re-key on (B, T) changes."""
        cell = LSTMCell(3, 4, rng)
        cell.fast_train = True
        for shape in ((4, 5, 3), (2, 5, 3), (4, 3, 3), (4, 5, 3)):
            x = rng.normal(size=shape)
            out = cell.forward(x)
            cell.backward(np.ones_like(out))
            cell.fast_train = False
            ref = cell.forward(x)
            cell.fast_train = True
            np.testing.assert_allclose(out, ref, atol=1e-10)
