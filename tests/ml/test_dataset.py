"""Dataset container and normalizer tests."""

import numpy as np
import pytest

from repro.ml.dataset import FeatureNormalizer, SinanDataset


def make_dataset(n=20, n_tiers=4, t=3, f=6, m=5, seed=0):
    rng = np.random.default_rng(seed)
    return SinanDataset(
        X_RH=rng.normal(size=(n, f, n_tiers, t)) + 5.0,
        X_LH=np.abs(rng.normal(size=(n, t, m))) * 100,
        X_RC=np.abs(rng.normal(size=(n, n_tiers))) + 0.5,
        y_lat=np.linspace(50, 1000, n)[:, None] * np.ones((n, m)),
        y_viol=(np.arange(n) % 2).astype(float),
    )


class TestSinanDataset:
    def test_length_and_dims(self):
        ds = make_dataset()
        assert len(ds) == 20
        assert ds.n_tiers == 4
        assert ds.n_channels == 6
        assert ds.n_timesteps == 3
        assert ds.n_percentiles == 5

    def test_rejects_misaligned_arrays(self):
        ds = make_dataset()
        with pytest.raises(ValueError, match="length mismatch"):
            SinanDataset(
                X_RH=ds.X_RH,
                X_LH=ds.X_LH[:-1],
                X_RC=ds.X_RC,
                y_lat=ds.y_lat,
                y_viol=ds.y_viol,
            )

    def test_subset(self):
        ds = make_dataset()
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.y_lat[1], ds.y_lat[5])

    def test_filter_latency_below(self):
        ds = make_dataset()
        filtered = ds.filter_latency_below(500.0)
        assert len(filtered) > 0
        assert np.all(filtered.y_lat[:, -1] < 500.0)

    def test_split_ratio(self):
        ds = make_dataset(n=100)
        split = ds.split(0.9, np.random.default_rng(1))
        assert len(split.train) == 90
        assert len(split.val) == 10
        # No overlap: union of latencies matches original multiset.
        combined = np.sort(
            np.concatenate([split.train.y_lat[:, 0], split.val.y_lat[:, 0]])
        )
        np.testing.assert_allclose(combined, np.sort(ds.y_lat[:, 0]))

    def test_split_validates_fraction(self):
        with pytest.raises(ValueError):
            make_dataset().split(1.0)

    def test_concatenate(self):
        a, b = make_dataset(n=5), make_dataset(n=7, seed=1)
        merged = SinanDataset.concatenate([a, b])
        assert len(merged) == 12
        with pytest.raises(ValueError):
            SinanDataset.concatenate([])

    def test_violation_fraction(self):
        ds = make_dataset(n=10)
        assert ds.violation_fraction() == pytest.approx(0.5)


class TestFeatureNormalizer:
    def test_requires_fit(self):
        norm = FeatureNormalizer(qos_ms=500.0)
        ds = make_dataset()
        assert not norm.fitted
        with pytest.raises(RuntimeError):
            norm.transform(ds.X_RH, ds.X_LH, ds.X_RC)
        with pytest.raises(RuntimeError):
            _ = norm.rc_scale

    def test_standardizes_rh_channels(self):
        ds = make_dataset(n=200)
        norm = FeatureNormalizer(qos_ms=500.0).fit(ds)
        rh, lh, rc = norm.transform(ds.X_RH, ds.X_LH, ds.X_RC)
        means = rh.mean(axis=(0, 2, 3))
        stds = rh.std(axis=(0, 2, 3))
        np.testing.assert_allclose(means, 0.0, atol=1e-8)
        np.testing.assert_allclose(stds, 1.0, atol=1e-6)

    def test_latency_scaled_by_qos(self):
        ds = make_dataset()
        norm = FeatureNormalizer(qos_ms=200.0).fit(ds)
        _, lh, _ = norm.transform(ds.X_RH, ds.X_LH, ds.X_RC)
        np.testing.assert_allclose(lh, ds.X_LH / 200.0)

    def test_transform_dataset_preserves_labels(self):
        ds = make_dataset()
        norm = FeatureNormalizer(qos_ms=500.0).fit(ds)
        out = norm.transform_dataset(ds)
        np.testing.assert_allclose(out.y_lat, ds.y_lat)
        np.testing.assert_allclose(out.y_viol, ds.y_viol)

    def test_rejects_bad_qos(self):
        with pytest.raises(ValueError):
            FeatureNormalizer(qos_ms=0.0)
