"""Boosted-trees classifier tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.boosted_trees import BoostedTrees, BoostedTreesConfig


def blobs(n=1000, seed=0):
    """Nonlinearly separable binary problem."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = ((X[:, 0] + 0.5 * X[:, 1] ** 2 - 0.3 * X[:, 2]) > 0.4).astype(float)
    return X, y


class TestTraining:
    def test_learns_nonlinear_boundary(self):
        X, y = blobs(1500)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=150), seed=0)
        bt.fit(X[:1200], y[:1200], X[1200:], y[1200:])
        assert bt.val_accuracy > 0.9
        assert bt.train_accuracy >= bt.val_accuracy - 0.05

    def test_early_stopping_limits_trees(self):
        X, y = blobs(800)
        config = BoostedTreesConfig(n_trees=400, early_stopping_rounds=10)
        bt = BoostedTrees(config, seed=0).fit(X[:600], y[:600], X[600:], y[600:])
        assert 0 < bt.n_trees_used <= 400

    def test_degenerate_single_class(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        y = np.zeros(50)
        bt = BoostedTrees(seed=0).fit(X, y)
        assert bt.n_trees_used == 0
        assert np.all(bt.predict_proba(X) < 0.5)
        assert bt.train_accuracy == 1.0

    def test_input_validation(self):
        bt = BoostedTrees()
        with pytest.raises(ValueError):
            bt.fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            bt.fit(np.ones(3), np.ones(3))

    def test_fit_without_validation_set(self):
        X, y = blobs(300)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=20), seed=0).fit(X, y)
        assert bt.n_trees_used == 20
        assert np.isnan(bt.val_accuracy)

    def test_min_child_weight_regularizes(self):
        X, y = blobs(400)
        loose = BoostedTrees(BoostedTreesConfig(n_trees=50, min_child_weight=0.001), seed=0)
        tight = BoostedTrees(BoostedTreesConfig(n_trees=50, min_child_weight=20.0), seed=0)
        loose.fit(X, y)
        tight.fit(X, y)
        assert loose.train_accuracy >= tight.train_accuracy


class TestInference:
    def test_probabilities_in_unit_interval(self):
        X, y = blobs(500)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=40), seed=1).fit(X, y)
        probs = bt.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_threshold(self):
        X, y = blobs(500)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=40), seed=1).fit(X, y)
        strict = bt.predict(X, threshold=0.9).sum()
        loose = bt.predict(X, threshold=0.1).sum()
        assert loose >= strict

    def test_single_row_input(self):
        X, y = blobs(300)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=20), seed=0).fit(X, y)
        out = bt.predict_proba(X[0])
        assert out.shape == (1,)

    def test_margin_is_logit_of_proba(self):
        X, y = blobs(300)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=20), seed=0).fit(X, y)
        margin = bt.predict_margin(X[:10])
        prob = bt.predict_proba(X[:10])
        np.testing.assert_allclose(prob, 1 / (1 + np.exp(-margin)))

    def test_compiled_matches_recursive_reference(self):
        """Vectorized array traversal == per-tree recursion, bitwise."""
        X, y = blobs(800)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=60), seed=0).fit(
            X[:600], y[:600], X[600:], y[600:]
        )
        queries = np.concatenate([X[:100], X[:3] * 100.0])
        assert np.array_equal(
            bt.predict_margin(queries), bt.predict_margin_reference(queries)
        )

    def test_compiled_matches_reference_with_nan_features(self):
        """NaN comparisons are False on both paths (NaN routes right)."""
        X, y = blobs(500)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=30), seed=2).fit(X, y)
        queries = X[:50].copy()
        queries[::7, 2] = np.nan
        queries[3] = np.nan
        assert np.array_equal(
            bt.predict_margin(queries), bt.predict_margin_reference(queries)
        )

    def test_compiled_survives_pickle(self):
        import pickle

        X, y = blobs(400)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=25), seed=3).fit(X, y)
        clone = pickle.loads(pickle.dumps(bt))
        assert np.array_equal(clone.predict_proba(X[:20]), bt.predict_proba(X[:20]))

    def test_compiled_lazily_rebuilt(self):
        """Ensembles without a compiled form (e.g. old pickles) compile
        on first predict instead of falling back to recursion forever."""
        X, y = blobs(400)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=25), seed=4).fit(X, y)
        want = bt.predict_margin(X[:10])
        bt._compiled = None
        assert np.array_equal(bt.predict_margin(X[:10]), want)
        assert bt._compiled is not None

    def test_vectorized_binize_matches_searchsorted(self):
        """The one-pass binning equals per-feature searchsorted, NaN
        rows included (NaN lands in the overflow bin)."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 7))
        X[::11, 3] = np.nan
        bt = BoostedTrees(BoostedTreesConfig(n_bins=16), seed=0)
        bt._bin_edges = bt._make_bins(np.nan_to_num(X))
        edges = bt._bin_edges
        binned = bt._binize(X)
        for f, cuts in enumerate(edges):
            want = np.searchsorted(cuts, X[:, f], side="right")
            nan = np.isnan(X[:, f])
            want[nan] = len(cuts)
            np.testing.assert_array_equal(binned[:, f], want)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_calibrated_direction(self, seed):
        """Higher signal feature should not reduce violation probability
        on a monotone problem."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(float)
        bt = BoostedTrees(BoostedTreesConfig(n_trees=20), seed=0).fit(X, y)
        low = bt.predict_proba(np.array([[-2.0, 0.0]]))[0]
        high = bt.predict_proba(np.array([[2.0, 0.0]]))[0]
        assert high >= low


def _fit_pair(config, X, y, X_val=None, y_val=None, seed=0):
    """The same fit twice: histogram grower vs reference grower."""
    fast = BoostedTrees(config, seed=seed)
    fast.fast_train = True
    fast.fit(X, y, X_val, y_val)
    ref = BoostedTrees(config, seed=seed)
    ref.fast_train = False
    ref.fit(X, y, X_val, y_val)
    return fast, ref


def _assert_same_structure(fast, ref):
    """Split-for-split equality: features and thresholds exact, leaf
    weights to 1e-10 (the histogram grower's oracle contract)."""
    assert len(fast.trees) == len(ref.trees)

    def walk(a, b):
        assert (a is None) == (b is None)
        if a is None:
            return
        assert a.feature == b.feature
        if a.is_leaf:
            assert a.value == pytest.approx(b.value, abs=1e-10)
        else:
            assert a.threshold == b.threshold
        walk(a.left, b.left)
        walk(a.right, b.right)

    for ta, tb in zip(fast.trees, ref.trees):
        walk(ta, tb)


class TestHistogramGrower:
    """The level-wise histogram grower is a drop-in for the reference."""

    def test_matches_reference_with_validation(self):
        X, y = blobs(900, seed=4)
        fast, ref = _fit_pair(
            BoostedTreesConfig(n_trees=40), X[:700], y[:700], X[700:], y[700:]
        )
        _assert_same_structure(fast, ref)
        assert np.array_equal(fast.predict_margin(X), ref.predict_margin(X))

    def test_matches_reference_without_validation(self):
        X, y = blobs(500, seed=5)
        fast, ref = _fit_pair(BoostedTreesConfig(n_trees=30), X, y)
        _assert_same_structure(fast, ref)
        assert np.array_equal(fast.predict_margin(X), ref.predict_margin(X))

    @pytest.mark.parametrize(
        "config",
        [
            BoostedTreesConfig(n_trees=15, min_child_weight=5.0),
            BoostedTreesConfig(n_trees=15, gamma=0.5),
            BoostedTreesConfig(n_trees=15, max_depth=1),
            BoostedTreesConfig(n_trees=15, n_bins=8),
            BoostedTreesConfig(n_trees=15, reg_lambda=0.0),
            BoostedTreesConfig(n_trees=15, min_child_weight=0.01),
        ],
        ids=["mcw", "gamma", "stumps", "coarse-bins", "no-lambda", "tiny-mcw"],
    )
    def test_matches_reference_across_configs(self, config):
        X, y = blobs(400, seed=6)
        fast, ref = _fit_pair(config, X, y)
        _assert_same_structure(fast, ref)

    def test_matches_reference_with_duplicate_columns(self):
        """Duplicated features force exact cross-feature gain ties; the
        tie-break must still follow the reference (first feature wins)."""
        X, y = blobs(400, seed=7)
        X = np.hstack([X, X[:, :3]])
        fast, ref = _fit_pair(BoostedTreesConfig(n_trees=20), X, y)
        _assert_same_structure(fast, ref)

    def test_matches_reference_with_discrete_features(self):
        """Few distinct values: most bins empty, ties everywhere."""
        rng = np.random.default_rng(8)
        X = rng.integers(0, 4, size=(300, 5)).astype(float)
        y = ((X[:, 0] + X[:, 1] >= 4) ^ (rng.random(300) < 0.1)).astype(float)
        fast, ref = _fit_pair(BoostedTreesConfig(n_trees=25), X, y)
        _assert_same_structure(fast, ref)

    def test_degenerate_regularization_falls_back(self):
        """λ=0 with mcw=0 uses the reference grower outright (0/0 gains)."""
        X, y = blobs(200, seed=9)
        config = BoostedTreesConfig(n_trees=5, reg_lambda=0.0, min_child_weight=0.0)
        fast, ref = _fit_pair(config, X, y)
        _assert_same_structure(fast, ref)

    def test_binize_chunked_matches_unchunked(self):
        """Row-chunked binning is exact under ragged per-feature bin
        counts (constant and low-cardinality columns dedupe edges)."""
        rng = np.random.default_rng(10)
        X = np.column_stack([
            rng.normal(size=200),
            np.full(200, 3.14),
            rng.integers(0, 3, 200).astype(float),
            rng.exponential(size=200),
        ])
        bt = BoostedTrees(BoostedTreesConfig(n_bins=16))
        bt._bin_edges = bt._make_bins(X)
        whole = bt._binize(X)
        assert whole.dtype == np.int32
        for chunk in (1, 7, 200, 1000):
            chunked = bt._binize(X, chunk_rows=chunk)
            assert chunked.dtype == np.int32
            assert np.array_equal(chunked, whole)
