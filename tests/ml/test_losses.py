"""Loss and latency-scaler tests (paper Eq. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.losses import (
    BCEWithLogitsLoss,
    LatencyScaler,
    MSELoss,
    ScaledMSELoss,
)


class TestLatencyScaler:
    def test_identity_below_knee(self):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        x = np.array([0.0, 50.0, 100.0])
        np.testing.assert_allclose(scaler.scale(x), x)

    def test_compresses_above_knee(self):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        assert scaler.scale(np.array([200.0]))[0] == pytest.approx(150.0)
        assert scaler.scale(np.array([1e9]))[0] < scaler.ceiling

    def test_ceiling(self):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        assert scaler.ceiling == pytest.approx(200.0)

    def test_figure7_alpha_variants(self):
        """Larger alpha compresses the above-QoS range more (Figure 7)."""
        x = np.array([300.0])
        values = [
            LatencyScaler(t=100.0, alpha=a).scale(x)[0]
            for a in (0.005, 0.01, 0.02)
        ]
        assert values[0] > values[1] > values[2]

    def test_derivative_matches_numeric(self):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        for x in (10.0, 99.0, 150.0, 400.0):
            eps = 1e-5
            num = (scaler.scale(x + eps) - scaler.scale(x - eps)) / (2 * eps)
            assert scaler.derivative(np.array([x]))[0] == pytest.approx(
                float(num), rel=1e-4
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyScaler(t=0.0)
        with pytest.raises(ValueError):
            LatencyScaler(t=10.0, alpha=0.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_property_monotone_nondecreasing(self, x):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        assert scaler.scale(np.array([x + 1.0]))[0] >= scaler.scale(np.array([x]))[0]

    @given(st.floats(min_value=0.0, max_value=5e3))
    def test_property_inverse_roundtrip(self, x):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        scaled = scaler.scale(np.array([x]))
        assert scaler.inverse(scaled)[0] == pytest.approx(x, rel=1e-3, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_property_bounded_by_ceiling(self, x):
        scaler = LatencyScaler(t=50.0, alpha=0.02)
        assert scaler.scale(np.array([x]))[0] <= scaler.ceiling


class TestLosses:
    def test_mse_value_and_grad(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 4.0]])
        value, grad = loss(pred, target)
        assert value == pytest.approx((1 + 4) / 2)
        np.testing.assert_allclose(grad, [[1.0, -2.0]])

    def test_scaled_mse_ignores_far_above_qos_differences(self):
        scaler = LatencyScaler(t=100.0, alpha=0.05)
        loss = ScaledMSELoss(scaler)
        target = np.array([[1000.0]])
        v_near, _ = loss(np.array([[90.0]]), target)
        # Errors between two far-above-QoS values are compressed.
        v_far, _ = loss(np.array([[2000.0]]), np.array([[1000.0]]))
        assert v_far < v_near

    def test_scaled_mse_grad_matches_numeric(self):
        scaler = LatencyScaler(t=100.0, alpha=0.01)
        loss = ScaledMSELoss(scaler)
        target = np.array([[80.0, 300.0]])
        pred = np.array([[120.0, 150.0]])
        _, grad = loss(pred, target)
        eps = 1e-5
        for idx in np.ndindex(pred.shape):
            plus = pred.copy()
            plus[idx] += eps
            v_plus, _ = loss(plus, target)
            minus = pred.copy()
            minus[idx] -= eps
            v_minus, _ = loss(minus, target)
            num = (v_plus - v_minus) / (2 * eps)
            assert grad[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_bce_matches_reference(self):
        loss = BCEWithLogitsLoss()
        logits = np.array([[0.0], [2.0]])
        target = np.array([[1.0], [0.0]])
        value, grad = loss(logits, target)
        prob = 1 / (1 + np.exp(-logits))
        expected = -np.mean(
            target * np.log(prob) + (1 - target) * np.log(1 - prob)
        )
        assert value == pytest.approx(float(expected))
        np.testing.assert_allclose(grad, (prob - target) / 2, rtol=1e-6)

    def test_bce_stable_for_extreme_logits(self):
        loss = BCEWithLogitsLoss()
        value, grad = loss(np.array([[500.0, -500.0]]), np.array([[1.0, 0.0]]))
        assert np.isfinite(value)
        assert np.isfinite(grad).all()
