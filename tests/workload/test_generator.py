"""Workload generator and request mix tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workload.generator import RequestMix, Workload
from repro.workload.mixes import SOCIAL_MIXES, hotel_mix, social_mix
from repro.workload.patterns import ConstantLoad, RampLoad


class TestRequestMix:
    def test_normalizes_ratios(self):
        mix = RequestMix.from_ratios({"a": 5, "b": 80, "c": 15})
        fractions = mix.as_dict()
        assert fractions["a"] == pytest.approx(0.05)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            RequestMix.from_ratios({"a": 0.0})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RequestMix.from_ratios({"a": -1.0, "b": 2.0})

    def test_vector_alignment(self, tiny_graph):
        mix = RequestMix.from_ratios({"Write": 1, "Read": 3})
        vec = mix.vector(tiny_graph)
        assert vec[tiny_graph.type_names.index("Read")] == pytest.approx(0.75)
        assert vec.sum() == pytest.approx(1.0)

    def test_vector_rejects_unknown_type(self, tiny_graph):
        mix = RequestMix.from_ratios({"Nope": 1})
        with pytest.raises(ValueError, match="unknown request types"):
            mix.vector(tiny_graph)

    def test_missing_types_get_zero(self, tiny_graph):
        mix = RequestMix.from_ratios({"Read": 1})
        vec = mix.vector(tiny_graph)
        assert vec[tiny_graph.type_names.index("Write")] == 0.0

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.01, max_value=100),
            min_size=1,
        )
    )
    def test_property_fractions_sum_to_one(self, ratios):
        mix = RequestMix.from_ratios(ratios)
        assert sum(mix.as_dict().values()) == pytest.approx(1.0)


class TestWorkload:
    def test_rates_scale_with_users(self, tiny_graph, tiny_mix):
        wl = Workload(tiny_graph, ConstantLoad(100), tiny_mix)
        rates = wl.rates(0.0)
        assert rates.sum() == pytest.approx(100.0)
        assert rates[tiny_graph.type_names.index("Read")] == pytest.approx(90.0)

    def test_rps_per_user(self, tiny_graph, tiny_mix):
        wl = Workload(tiny_graph, ConstantLoad(100), tiny_mix, rps_per_user=2.0)
        assert wl.total_rps(0.0) == pytest.approx(200.0)

    def test_rejects_nonpositive_rps_per_user(self, tiny_graph, tiny_mix):
        with pytest.raises(ValueError):
            Workload(tiny_graph, ConstantLoad(1), tiny_mix, rps_per_user=0.0)

    def test_time_varying_pattern(self, tiny_graph, tiny_mix):
        wl = Workload(tiny_graph, RampLoad(0, 100, duration=100), tiny_mix)
        assert wl.total_rps(0.0) == pytest.approx(0.0)
        assert wl.total_rps(100.0) == pytest.approx(100.0)

    def test_with_pattern_and_mix(self, tiny_graph, tiny_mix):
        wl = Workload(tiny_graph, ConstantLoad(10), tiny_mix)
        wl2 = wl.with_pattern(ConstantLoad(20))
        assert wl2.total_rps(0) == pytest.approx(20.0)
        new_mix = RequestMix.from_ratios({"Write": 1})
        wl3 = wl.with_mix(new_mix)
        assert wl3.rates(0)[tiny_graph.type_names.index("Write")] == pytest.approx(10.0)


class TestCanonicalMixes:
    def test_social_mixes_match_paper_ratios(self):
        w0 = SOCIAL_MIXES["W0"].as_dict()
        assert w0["ComposePost"] == pytest.approx(0.05)
        assert w0["ReadHomeTimeline"] == pytest.approx(0.80)
        assert w0["ReadUserTimeline"] == pytest.approx(0.15)
        w3 = SOCIAL_MIXES["W3"].as_dict()
        assert w3["ReadUserTimeline"] == pytest.approx(0.25)

    def test_all_four_mixes_exist(self):
        assert set(SOCIAL_MIXES) == {"W0", "W1", "W2", "W3"}

    def test_social_mix_lookup(self):
        assert social_mix().as_dict() == SOCIAL_MIXES["W0"].as_dict()
        with pytest.raises(KeyError, match="unknown social mix"):
            social_mix("W9")

    def test_hotel_mix_is_search_dominated(self):
        mix = hotel_mix().as_dict()
        assert mix["Search"] > 0.5
        assert sum(mix.values()) == pytest.approx(1.0)
