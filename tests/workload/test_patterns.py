"""Load pattern tests, including property-based invariants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.workload.patterns import (
    ConstantLoad,
    DiurnalLoad,
    RampLoad,
    StepLoad,
    TraceLoad,
)


class TestConstantLoad:
    def test_constant(self):
        load = ConstantLoad(42)
        assert load.users(0) == 42
        assert load.users(1e6) == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1)

    @given(st.floats(min_value=0, max_value=1e5), st.floats(min_value=0, max_value=1e6))
    def test_property_time_invariant(self, users, time):
        assert ConstantLoad(users).users(time) == users


class TestStepLoad:
    def test_steps_apply_in_order(self):
        load = StepLoad(((0.0, 10.0), (100.0, 50.0), (200.0, 20.0)))
        assert load.users(0) == 10
        assert load.users(99.9) == 10
        assert load.users(100) == 50
        assert load.users(500) == 20

    def test_before_first_step_uses_first_value(self):
        load = StepLoad(((50.0, 30.0),))
        assert load.users(0) == 30

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            StepLoad(((10.0, 1.0), (5.0, 2.0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StepLoad(())


class TestDiurnalLoad:
    def test_starts_at_trough_with_default_phase(self):
        load = DiurnalLoad(base=100, amplitude=50, period=600)
        assert load.users(0) == pytest.approx(50.0)
        assert load.users(300) == pytest.approx(150.0)  # half period later: peak

    def test_period_wraps(self):
        load = DiurnalLoad(base=100, amplitude=50, period=600)
        assert load.users(0) == pytest.approx(load.users(600))

    def test_floors_at_zero(self):
        load = DiurnalLoad(base=10, amplitude=50)
        assert load.users(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoad(base=10, amplitude=5, period=0)
        with pytest.raises(ValueError):
            DiurnalLoad(base=10, amplitude=-5)

    @given(st.floats(min_value=0, max_value=1e5))
    def test_property_bounded(self, time):
        load = DiurnalLoad(base=100, amplitude=40, period=300)
        assert 60.0 - 1e-9 <= load.users(time) <= 140.0 + 1e-9


class TestRampLoad:
    def test_endpoints(self):
        load = RampLoad(10, 110, duration=100)
        assert load.users(0) == 10
        assert load.users(50) == pytest.approx(60)
        assert load.users(100) == 110
        assert load.users(1000) == 110  # held after the ramp

    def test_descending_ramp(self):
        load = RampLoad(100, 0, duration=10)
        assert load.users(5) == pytest.approx(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampLoad(1, 2, duration=0)

    @given(st.floats(min_value=0, max_value=200))
    def test_property_monotone_ascending(self, t):
        load = RampLoad(0, 100, duration=100)
        assert load.users(t) <= load.users(min(t + 1.0, 1e9))


class TestTraceLoad:
    def test_replays_and_holds_last(self):
        load = TraceLoad([1, 2, 3])
        assert load.users(0.0) == 1
        assert load.users(1.5) == 2
        assert load.users(2.0) == 3
        assert load.users(99.0) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceLoad([])
