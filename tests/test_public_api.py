"""Public API stability: the names downstream users import."""

import importlib

import pytest


PUBLIC_API = {
    "repro": ["__version__", "quick_sinan"],
    "repro.sim": [
        "TierSpec", "TierKind", "AppGraph", "RequestType", "IntervalStats",
        "TelemetryLog", "QueueingEngine", "ClusterSimulator",
        "LOCAL_PLATFORM", "GCE_PLATFORM", "CapacityFault",
    ],
    "repro.apps": [
        "social_network", "hotel_reservation", "media_service",
        "SOCIAL_QOS_MS", "HOTEL_QOS_MS", "MEDIA_QOS_MS", "RedisLogSync",
        "encrypted_posts_variant", "scaled_replicas_variant",
    ],
    "repro.workload": [
        "Workload", "RequestMix", "ConstantLoad", "StepLoad", "DiurnalLoad",
        "RampLoad", "TraceLoad", "SOCIAL_MIXES", "social_mix", "hotel_mix",
        "media_mix",
    ],
    "repro.tenancy": [
        "TenantSpec", "Tenant", "build_tenant", "CreditConfig",
        "CreditLedger", "AllocationRequest", "TenantGrant", "ArbiterDecision",
        "CreditArbiter", "StaticPartitionArbiter", "MultiTenantSimulator",
    ],
    "repro.ml": [
        "SinanDataset", "LatencyScaler", "MSELoss", "ScaledMSELoss",
        "LatencyCNN", "LatencyMLP", "LatencyLSTM", "MultiTaskNN",
        "BoostedTrees", "rmse",
    ],
    "repro.core": [
        "QoSTarget", "WindowEncoder", "build_dataset", "ActionSpace",
        "HybridPredictor", "OnlineScheduler", "SinanManager",
        "BanditExplorer", "DataCollector", "fine_tune_predictor",
        "LimeExplainer", "Manager", "StaticManager",
        "MemoryProvisioner", "BandwidthProvisioner",
        "CentralScheduler", "NodeAgent", "PredictionService",
    ],
    "repro.baselines": ["AutoScale", "PowerChief"],
    "repro.harness": [
        "run_episode", "sweep_loads", "EpisodeResult",
        "build_sinan_pipeline", "get_trained_predictor", "format_table",
        "run_episodes", "resolve_jobs", "EpisodeTask", "RunSummary",
        "run_multitenant_episode", "sweep_multitenant",
        "default_tenant_specs", "format_multitenant_report",
        "MultiTenantResult", "TenantResult",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_names_resolve(module_name):
    """Everything listed in __all__ actually exists."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_public_items_documented():
    """Every public class/function in the core packages has a docstring."""
    import inspect

    for module_name in PUBLIC_API:
        module = importlib.import_module(module_name)
        for name in PUBLIC_API[module_name]:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module_name}.{name} undocumented"
