"""Application topology tests (paper Figures 1-2)."""

import numpy as np
import pytest

from repro.apps import (
    HOTEL_QOS_MS,
    MEDIA_QOS_MS,
    SOCIAL_QOS_MS,
    RedisLogSync,
    encrypted_posts_variant,
    hotel_reservation,
    media_service,
    scaled_replicas_variant,
    social_network,
)
from repro.sim.tier import TierKind


@pytest.fixture(scope="module")
def social():
    return social_network()


@pytest.fixture(scope="module")
def hotel():
    return hotel_reservation()


@pytest.fixture(scope="module")
def media():
    return media_service()


class TestSocialNetwork:
    def test_tier_count_matches_figure2(self, social):
        assert social.n_tiers == 28

    def test_qos_is_500ms(self):
        assert SOCIAL_QOS_MS == 500.0

    def test_request_types(self, social):
        assert social.type_names == [
            "ComposePost",
            "ReadHomeTimeline",
            "ReadUserTimeline",
        ]

    def test_compose_touches_ml_filters(self, social):
        compose = social.request_type("ComposePost")
        assert "mediaFilter" in compose.tiers
        assert "textFilter" in compose.tiers

    def test_compose_is_heaviest(self, social):
        """ComposePost places the most CPU work end-to-end (Figure 14's
        premise: compose-heavy mixes need the most compute)."""
        costs = {}
        for rtype in social.request_types:
            r = social.type_names.index(rtype.name)
            cost = sum(
                social.visit_matrix[r, i] * social.tiers[i].cpu_per_req
                for i in range(social.n_tiers)
            )
            costs[rtype.name] = cost
        assert costs["ComposePost"] > costs["ReadHomeTimeline"]
        assert costs["ComposePost"] > costs["ReadUserTimeline"]

    def test_frontend_is_nginx(self, social):
        assert social.tiers[social.index["nginx"]].kind is TierKind.FRONTEND

    def test_ml_tiers_have_core_floor(self, social):
        for name in ("textFilter", "mediaFilter"):
            assert social.tiers[social.index[name]].min_cpu >= 1.0

    def test_all_tiers_reachable_by_some_request(self, social):
        visited = social.visit_matrix.sum(axis=0)
        assert np.all(visited > 0), [
            social.tier_names[i] for i in np.flatnonzero(visited == 0)
        ]


class TestHotelReservation:
    def test_tier_count_matches_figure1(self, hotel):
        assert hotel.n_tiers == 17

    def test_qos_is_200ms(self):
        assert HOTEL_QOS_MS == 200.0

    def test_request_types(self, hotel):
        assert set(hotel.type_names) == {"Search", "Recommend", "Reserve", "Login"}

    def test_search_hits_geo_and_rate(self, hotel):
        search = hotel.request_type("Search")
        assert "geo" in search.tiers and "rate" in search.tiers

    def test_backends_exist(self, hotel):
        kinds = {t.kind for t in hotel.tiers}
        assert TierKind.CACHE in kinds and TierKind.DB in kinds

    def test_all_tiers_reachable(self, hotel):
        assert np.all(hotel.visit_matrix.sum(axis=0) > 0)


class TestMediaService:
    def test_tier_count(self, media):
        assert media.n_tiers == 27

    def test_qos_between_paper_apps(self):
        assert MEDIA_QOS_MS == 300.0
        assert HOTEL_QOS_MS < MEDIA_QOS_MS < SOCIAL_QOS_MS

    def test_request_types(self, media):
        assert set(media.type_names) == {
            "ComposeReview", "ReadMoviePage", "ReadUserReviews"
        }

    def test_movie_page_aggregates_four_services(self, media):
        page = media.request_type("ReadMoviePage")
        for svc in ("movieInfo", "castInfo", "plot", "movieReview"):
            assert svc in page.tiers

    def test_frontend_and_backends(self, media):
        assert media.tiers[media.index["nginx"]].kind is TierKind.FRONTEND
        kinds = {t.kind for t in media.tiers}
        assert TierKind.CACHE in kinds and TierKind.DB in kinds

    def test_all_tiers_reachable(self, media):
        visited = media.visit_matrix.sum(axis=0)
        assert np.all(visited > 0), [
            media.tier_names[i] for i in np.flatnonzero(visited == 0)
        ]


class TestVariants:
    def test_redis_log_sync_targets_graph_redis(self, social):
        sync = RedisLogSync(social)
        assert sync.tier_index == social.index["graph-redis"]
        mult = sync.capacity_multiplier(sync.start_offset + 0.1, social.n_tiers)
        assert mult is not None
        assert mult[sync.tier_index] < 0.1

    def test_redis_log_sync_requires_redis_tier(self, hotel):
        with pytest.raises(ValueError, match="absent"):
            RedisLogSync(hotel)

    def test_encrypted_posts_scales_post_tiers(self, social):
        variant = encrypted_posts_variant(social, cpu_scale=1.6)
        idx = social.index["postStore"]
        assert variant.tiers[idx].cpu_per_req == pytest.approx(
            1.6 * social.tiers[idx].cpu_per_req
        )
        untouched = social.index["homeTimeline"]
        assert variant.tiers[untouched].cpu_per_req == pytest.approx(
            social.tiers[untouched].cpu_per_req
        )

    def test_scaled_replicas_spares_databases(self, social):
        variant = scaled_replicas_variant(social, replicas=2)
        for tier in variant.tiers:
            if tier.kind is TierKind.DB:
                assert tier.replicas == 1
            else:
                assert tier.replicas == 2

    def test_scaled_replicas_validation(self, social):
        with pytest.raises(ValueError):
            scaled_replicas_variant(social, replicas=0)
