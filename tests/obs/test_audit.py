"""Audit log: records, ring buffer, persistence, and explanations."""

import math

import pytest

from repro.obs.audit import (
    EVENT_DRIFT,
    EVENT_PROMOTED,
    REASON_BOOST,
    REASON_NO_ACCEPTABLE,
    REASON_PREDICTOR_FAILURE,
    AuditLog,
    AuditRecord,
    DivergenceRecord,
    ModelEventRecord,
    explain,
    format_audit_table,
    record_from_json,
)


def make_record(interval: int = 0, **overrides) -> AuditRecord:
    base = dict(
        interval=interval,
        time=float(interval),
        measured_p99_ms=120.0,
        rps=800.0,
        total_cpu=12.0,
        n_candidates=9,
        chosen_kind="scale_up",
        chosen_total_cpu=14.0,
        predicted_p99_ms=95.0,
        violation_prob=0.02,
        hold_p_ewma=0.05,
        chosen_alloc=(4.0, 6.0, 4.0),
    )
    base.update(overrides)
    return AuditRecord(**base)


class TestAuditRecord:
    def test_json_round_trip(self):
        record = make_record(3, fallback_reason=REASON_BOOST, trusted=False)
        restored = AuditRecord.from_json(record.to_json())
        assert restored == record
        assert isinstance(restored.chosen_alloc, tuple)

    def test_nan_defaults_survive_construction(self):
        record = AuditRecord(
            interval=0, time=0.0, measured_p99_ms=float("nan"), rps=0.0,
            total_cpu=1.0, n_candidates=0, chosen_kind="hold",
            chosen_total_cpu=1.0,
        )
        assert math.isnan(record.predicted_p99_ms)
        assert record.fallback_reason is None
        assert record.chosen_alloc == ()


class TestAuditLog:
    def test_ring_buffer_evicts_oldest_first(self):
        log = AuditLog(capacity=3)
        for i in range(5):
            log.append(make_record(i))
        assert len(log) == 3
        assert [r.interval for r in log.records()] == [2, 3, 4]
        assert log.evicted == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)

    def test_find_and_clear(self):
        log = AuditLog()
        log.append(make_record(7))
        assert log.find(7).interval == 7
        assert log.find(8) is None
        log.clear()
        assert len(log) == 0
        assert log.evicted == 0

    def test_jsonl_round_trip(self, tmp_path):
        log = AuditLog()
        log.append(make_record(0))
        log.append(make_record(1, fallback_reason=REASON_NO_ACCEPTABLE,
                               chosen_kind="max-allocation"))
        path = tmp_path / "audit.jsonl"
        log.write_jsonl(path)
        restored = AuditLog.read_jsonl(path)
        assert restored.records() == log.records()

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        AuditLog().write_jsonl(path)
        assert len(AuditLog.read_jsonl(path)) == 0


class TestExplain:
    def test_model_path_mentions_scores(self):
        text = explain(make_record(), qos_ms=200.0)
        assert "scale_up chosen from 9 candidates" in text
        assert "predicted p99=95.0ms" in text
        assert "meeting QoS" in text

    def test_violation_state_against_qos(self):
        text = explain(make_record(measured_p99_ms=300.0), qos_ms=200.0)
        assert "VIOLATING" in text

    def test_boost_path(self):
        text = explain(make_record(
            fallback_reason=REASON_BOOST, chosen_kind="recovery-boost",
            n_candidates=0, mispredictions=2,
        ))
        assert "unpredicted QoS violation" in text
        assert "misprediction counter now 2" in text

    def test_predictor_failure_path(self):
        text = explain(make_record(
            fallback_reason=REASON_PREDICTOR_FAILURE,
            chosen_kind="max-allocation", n_candidates=0,
        ))
        assert "predictor raised" in text
        assert "max-allocation" in text

    def test_no_acceptable_path(self):
        text = explain(make_record(
            fallback_reason=REASON_NO_ACCEPTABLE,
            chosen_kind="max-allocation",
        ))
        assert "9 candidates scored, none" in text

    def test_safety_state_always_present(self):
        text = explain(make_record(trusted=False, cooldown=3))
        assert "trusted=False" in text
        assert "reclaim cooldown=3" in text


def test_format_audit_table():
    records = [make_record(0), make_record(1, fallback_reason=REASON_BOOST)]
    table = format_audit_table(records)
    lines = table.splitlines()
    assert len(lines) == 4  # header + rule + 2 rows
    assert "chosen" in lines[0]
    assert REASON_BOOST in lines[3]
    assert lines[2].strip().startswith("0")


def make_divergence(interval: int = 5) -> DivergenceRecord:
    return DivergenceRecord(
        interval=interval,
        time=float(interval),
        challenger_version=2,
        incumbent_kind="hold",
        challenger_kind="scale_up",
        incumbent_total_cpu=12.0,
        challenger_total_cpu=14.0,
        incumbent_predicted_p99_ms=130.0,
        challenger_predicted_p99_ms=95.0,
    )


def make_event(interval: int = 3, event: str = EVENT_DRIFT) -> ModelEventRecord:
    return ModelEventRecord(
        interval=interval,
        time=float(interval),
        event=event,
        version=1,
        reason="misprediction-rate",
        detail="rate 0.4 > 0.2",
    )


class TestContinuousLearningRecords:
    def test_divergence_json_round_trip(self):
        record = make_divergence()
        data = record.to_json()
        assert data["record"] == "divergence"
        assert record_from_json(data) == record

    def test_model_event_json_round_trip(self):
        record = make_event()
        data = record.to_json()
        assert data["record"] == "model-event"
        assert record_from_json(data) == record

    def test_untagged_line_decodes_as_decision(self):
        record = make_record(2)
        assert record_from_json(record.to_json()) == record

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown audit record"):
            record_from_json({"record": "telepathy"})

    def test_mixed_log_filters(self):
        log = AuditLog()
        log.append(make_record(0))
        log.append(make_event(0))
        log.append(make_record(1))
        log.append(make_divergence(1))
        assert len(log.decisions()) == 2
        assert len(log.divergences()) == 1
        assert len(log.model_events()) == 1
        assert len(log.records()) == 4
        # find() only matches decisions, not same-interval markers.
        assert isinstance(log.find(1), AuditRecord)

    def test_mixed_jsonl_round_trip(self, tmp_path):
        log = AuditLog()
        log.append(make_record(0))
        log.append(make_event(0, EVENT_PROMOTED))
        log.append(make_divergence(1))
        path = tmp_path / "audit.jsonl"
        log.write_jsonl(path)
        restored = AuditLog.read_jsonl(path)
        assert restored.records() == log.records()

    def test_mixed_table_renders_markers(self):
        table = format_audit_table(
            [make_record(0), make_divergence(1), make_event(2, EVENT_PROMOTED)]
        )
        assert "~ shadow v2 diverged" in table
        assert "* model v1 promoted" in table
