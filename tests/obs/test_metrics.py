"""Metrics registry: instruments, labels, lifecycle, and exporters."""

import json
import re

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_histogram_bucket_placement(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 99.0):
            h.observe(v)
        # le semantics: a sample equal to a bound lands in that bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(113.5)
        assert h.cumulative_counts() == [2, 3, 4, 5]

    def test_histogram_requires_ascending_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_observe_many_matches_scalar_observe(self):
        values = np.random.default_rng(0).uniform(0, 1200, size=500)
        batch = Histogram(DEFAULT_BUCKETS)
        scalar = Histogram(DEFAULT_BUCKETS)
        batch.observe_many(values)
        for v in values:
            scalar.observe(v)
        assert batch.counts == scalar.counts
        assert batch.count == scalar.count
        assert batch.sum == pytest.approx(scalar.sum)

    def test_observe_many_empty_is_noop(self):
        h = Histogram()
        h.observe_many([])
        assert h.count == 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert reg.counter("x_total", tier="a") is not reg.counter(
            "x_total", tier="b"
        )

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", tier="nginx", app="social")
        b = reg.gauge("g", app="social", tier="nginx")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="things").inc(5)
        reg.histogram("h_ms").observe(3.0)
        reg.reset()
        snap = reg.snapshot()
        assert set(snap) == {"c_total", "h_ms"}
        assert snap["c_total"]["help"] == "things"
        assert snap["c_total"]["samples"][0]["value"] == 0.0
        assert snap["h_ms"]["samples"][0]["count"] == 0


#: One Prometheus sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_]+=\"[^\"]*\""            # first label
    r"(,[a-zA-Z_]+=\"[^\"]*\")*\})?"       # further labels
    r" (-?[0-9.e+-]+|NaN)$"                # value
)


class TestExporters:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("decisions_total", help="scheduler decisions").inc(42)
        reg.gauge("queue_depth", tier="nginx").set(3.0)
        reg.gauge("queue_depth", tier="redis").set(0.0)
        h = reg.histogram("p99_ms", buckets=(50.0, 100.0, 250.0))
        h.observe(40.0)
        h.observe(180.0)
        h.observe(9000.0)
        return reg

    def test_prometheus_text_parses_line_by_line(self):
        text = self.make_registry().to_prometheus_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_prometheus_histogram_is_cumulative_with_inf(self):
        text = self.make_registry().to_prometheus_text()
        buckets = [
            (m.group(1), int(m.group(2)))
            for m in re.finditer(r'p99_ms_bucket\{le="([^"]+)"\} (\d+)', text)
        ]
        assert [b for b, _ in buckets] == ["50", "100", "250", "+Inf"]
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts[-1] == 3
        assert "p99_ms_sum 9220" in text
        assert "p99_ms_count 3" in text

    def test_prometheus_help_and_type_lines(self):
        text = self.make_registry().to_prometheus_text()
        assert "# HELP decisions_total scheduler decisions" in text
        assert "# TYPE decisions_total counter" in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE p99_ms histogram" in text

    def test_json_round_trips(self):
        reg = self.make_registry()
        data = json.loads(reg.to_json())
        assert data["decisions_total"]["samples"][0]["value"] == 42
        tiers = {
            s["labels"]["tier"]: s["value"]
            for s in data["queue_depth"]["samples"]
        }
        assert tiers == {"nginx": 3.0, "redis": 0.0}

    def test_snapshot_is_deterministic(self):
        a = self.make_registry().to_json()
        b = self.make_registry().to_json()
        assert a == b

    def test_write_picks_format_by_extension(self, tmp_path):
        reg = self.make_registry()
        reg.write(tmp_path / "m.json")
        json.loads((tmp_path / "m.json").read_text())  # valid JSON
        reg.write(tmp_path / "m.prom")
        assert "# TYPE" in (tmp_path / "m.prom").read_text()
