"""Tracer: sampling, span bookkeeping, and the two export formats."""

import json

import pytest

from repro.obs.tracing import TRACE_PID, Span, Tracer


class TestTracer:
    def test_sampling_is_deterministic(self):
        t = Tracer(sample_every=3)
        kept = [i for i in range(10) if t.sampled(i)]
        assert kept == [0, 3, 6, 9]
        assert all(Tracer().sampled(i) for i in range(5))

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_span_converts_seconds_to_microseconds(self):
        t = Tracer()
        t.span("decide", 12.5, 0.0015, track="scheduler")
        span = t.spans[0]
        assert span.ts_us == 12_500_000
        assert span.dur_us == 1500

    def test_negative_duration_clamped(self):
        t = Tracer()
        t.span("x", 1.0, -0.5)
        assert t.spans[0].dur_us == 0

    def test_max_spans_drops_and_counts(self):
        t = Tracer(max_spans=2)
        for i in range(5):
            t.span("s", float(i), 0.1)
        assert len(t) == 2
        assert t.dropped == 3


class TestChromeExport:
    def make_tracer(self) -> Tracer:
        t = Tracer()
        t.span("decide", 1.0, 0.001, track="scheduler", cat="decision",
               args={"interval": 0})
        t.span("nginx", 1.0, 0.02, track="tier:nginx", cat="tier")
        t.span("decide", 2.0, 0.001, track="scheduler")
        return t

    def test_round_trips_through_json(self):
        doc = json.loads(json.dumps(self.make_tracer().to_chrome()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert all(isinstance(e["pid"], int) for e in events)
        assert all(isinstance(e["tid"], int) for e in events)

    def test_complete_events_and_track_metadata(self):
        doc = self.make_tracer().to_chrome()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 3
        assert {m["args"]["name"] for m in ms} == {"scheduler", "tier:nginx"}
        assert all(m["name"] == "thread_name" for m in ms)
        # Events on the same track share a tid; distinct tracks differ.
        tids = {e["name"]: e["tid"] for e in xs}
        assert tids["nginx"] != tids["decide"]
        assert all(e["pid"] == TRACE_PID for e in doc["traceEvents"])

    def test_timestamps_monotonic_per_track_even_if_recorded_out_of_order(self):
        t = Tracer()
        # Request spans are emitted at completion time but stamped at
        # arrival, so record order is not time order.
        t.span("req-b", 5.0, 1.0, track="requests")
        t.span("req-a", 2.0, 0.5, track="requests")
        t.span("req-c", 7.0, 0.1, track="requests")
        doc = t.to_chrome()
        last: dict[tuple, int] = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, 0)
            last[key] = e["ts"]

    def test_write_chrome_is_loadable(self, tmp_path):
        path = tmp_path / "episode.trace"
        self.make_tracer().write(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestJsonlExport:
    def test_one_json_object_per_line(self, tmp_path):
        t = Tracer()
        t.span("a", 1.0, 0.1, track="x", cat="c", args={"k": 1})
        t.span("b", 2.0, 0.2)
        path = tmp_path / "episode.jsonl"
        t.write(path)  # .jsonl suffix selects the line format
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "name": "a", "track": "x", "ts_us": 1_000_000,
            "dur_us": 100_000, "cat": "c", "args": {"k": 1},
        }

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        Tracer().write_jsonl(path)
        assert path.read_text() == ""

    def test_span_to_json_omits_empty_fields(self):
        span = Span(name="s", ts_us=1, dur_us=2)
        assert span.to_json() == {
            "name": "s", "track": "main", "ts_us": 1, "dur_us": 2,
        }
