"""Recorder on vs off must not change a single decision or sample.

The acceptance bar for the observability subsystem: episodes run with a
fully active :class:`~repro.obs.ActiveRecorder` are bitwise identical
to episodes run without one — same allocations, same latencies, same
prediction trace — while the artifacts (spans, metrics, audit records)
are actually populated.
"""

import numpy as np
import pytest

from repro.harness.bench import BenchConfig, make_synthetic_predictor
from repro.harness.experiment import run_episode
from repro.harness.pipeline import app_spec, make_cluster, make_manager
from repro.harness.resilience import run_resilience_episode
from repro.obs import ActiveRecorder

DURATION = 20
WARMUP = 5
USERS = 200

_CONFIG = BenchConfig(n_trees=40, tree_depth=4, seed=0)


def run_pair(fault_profile=None):
    """The same episode twice: recorder off, then recorder on."""
    spec = app_spec(_CONFIG.app)
    outcomes = []
    for recorder in (None, ActiveRecorder()):
        predictor = make_synthetic_predictor(_CONFIG)
        manager = make_manager("sinan", spec.graph_factory(), spec.qos,
                               predictor)
        cluster = make_cluster(
            spec.graph_factory(), users=USERS, seed=3,
            fault_profile=fault_profile,
        )
        if fault_profile is None:
            result = run_episode(manager, cluster, DURATION, spec.qos,
                                 warmup=WARMUP, recorder=recorder)
        else:
            result = run_resilience_episode(manager, cluster, DURATION,
                                            spec.qos, warmup=WARMUP,
                                            recorder=recorder)
        outcomes.append((result, cluster, manager, recorder))
    return outcomes


def assert_bitwise_equal(off, on):
    (_, cluster_off, manager_off, _) = off
    (_, cluster_on, manager_on, _) = on
    np.testing.assert_array_equal(
        cluster_off.telemetry.alloc_matrix(),
        cluster_on.telemetry.alloc_matrix(),
    )
    np.testing.assert_array_equal(
        cluster_off.telemetry.latency_matrix(),
        cluster_on.telemetry.latency_matrix(),
    )
    trace_off = manager_off.prediction_trace
    trace_on = manager_on.prediction_trace
    assert len(trace_off) == len(trace_on)
    for a, b in zip(trace_off, trace_on):
        assert set(a) == set(b)
        for key in a:
            # NaN-aware: safety-path entries legitimately carry NaN.
            np.testing.assert_array_equal(a[key], b[key])


class TestEquivalence:
    def test_normal_episode_identical(self):
        off, on = run_pair()
        assert_bitwise_equal(off, on)

    def test_fault_episode_identical(self):
        off, on = run_pair(fault_profile="chaos")
        assert_bitwise_equal(off, on)

    def test_recorder_artifacts_populated(self):
        _, on = run_pair()
        result, _, manager, recorder = on
        assert len(recorder.tracer) > 0
        # One audit record per decision the scheduler actually made.
        assert len(recorder.audit_log) == manager.scheduler.decisions
        snap = recorder.metrics.snapshot()
        assert snap["engine_intervals_total"]["samples"][0]["value"] == DURATION
        assert snap["scheduler_decisions_total"]["samples"][0]["value"] > 0
        # Decision spans land on the scheduler track.
        assert any(s.track == "scheduler" for s in recorder.tracer.spans)

    def test_fault_counters_populated(self):
        _, on = run_pair(fault_profile="chaos")
        _, _, _, recorder = on
        snap = recorder.metrics.snapshot()
        observed = snap["faults_observed_intervals_total"]["samples"][0]
        assert observed["value"] == DURATION

    def test_two_recorded_runs_identical_traces(self):
        """Determinism of the artifact itself, not just the episode.

        The one intentional wall-clock measurement is the *duration* of
        ``decide`` spans (decision overhead), so those durations are
        normalized before comparing; everything else — span names,
        tracks, simulation timestamps, args, audit records — must match
        exactly across runs.
        """
        def normalized(tracer):
            return [
                {**s.to_json(), "dur_us": 0} if s.cat == "decision"
                else s.to_json()
                for s in tracer._ordered()
            ]

        _, on_a = run_pair()
        _, on_b = run_pair()
        assert normalized(on_a[3].tracer) == normalized(on_b[3].tracer)
        audits_a = [r.to_json() for r in on_a[3].audit_log]
        audits_b = [r.to_json() for r in on_b[3].audit_log]
        assert len(audits_a) == len(audits_b)
        for a, b in zip(audits_a, audits_b):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])
