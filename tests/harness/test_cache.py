"""Predictor disk-cache hardening: atomicity, corruption recovery,
read/write split, and cross-process races on a cold cache.

Uses a one-load/two-epoch budget so every retrain is sub-second.
"""

import multiprocessing as mp
import os
import pickle

import pytest

from repro.harness import pipeline as pl
from repro.harness.pipeline import Budget

TINY = Budget("tiny", collection_loads=1, seconds_per_load=24, epochs=2,
              batch_size=32, refine_rounds=0)
APP = "hotel_reservation"


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    pl._memory_cache.clear()
    yield tmp_path
    pl._memory_cache.clear()


def _cache_file(tmp_path, seed):
    return tmp_path / f"predictor-{APP}-tiny-s{seed}-v{pl._CACHE_VERSION}.pkl"


def _train(seed, **kwargs):
    return pl.get_trained_predictor(APP, TINY, seed=seed, **kwargs)


class TestCorruptionRecovery:
    def test_truncated_cache_retrains(self, isolated_cache):
        """Regression: a crash mid-write used to leave a truncated pickle
        that made every subsequent ``get_trained_predictor`` raise."""
        _train(seed=1)
        cache_file = _cache_file(isolated_cache, 1)
        payload = cache_file.read_bytes()
        cache_file.write_bytes(payload[: len(payload) // 2])
        pl._memory_cache.clear()

        predictor = _train(seed=1)  # must not raise
        assert predictor.report.rmse_val > 0
        # The rewritten entry is whole again and loads cleanly.
        with open(cache_file, "rb") as fh:
            assert pickle.load(fh).report.rmse_val == predictor.report.rmse_val

    def test_garbage_cache_is_a_miss(self, isolated_cache):
        cache_file = _cache_file(isolated_cache, 2)
        cache_file.write_bytes(b"not a pickle at all")
        predictor = _train(seed=2)
        assert predictor.report.rmse_val > 0

    def test_empty_cache_file_is_a_miss(self, isolated_cache):
        cache_file = _cache_file(isolated_cache, 3)
        cache_file.touch()
        assert _train(seed=3).report.rmse_val > 0


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, isolated_cache):
        _train(seed=4)
        leftovers = [p for p in isolated_cache.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_store_replaces_existing_entry(self, isolated_cache):
        cache_file = _cache_file(isolated_cache, 5)
        predictor = _train(seed=5)
        before = cache_file.read_bytes()
        pl._store_cache_entry(cache_file, predictor)
        assert cache_file.read_bytes() == before  # same model, whole file


class TestReadWriteSplit:
    def test_no_cache_refreshes_the_entry(self, isolated_cache):
        """--no-cache must retrain AND rewrite the cache, not discard the
        fresh model (the old ``use_cache=False`` threw it away)."""
        _train(seed=6)
        cache_file = _cache_file(isolated_cache, 6)
        cache_file.write_bytes(b"stale garbage standing in for an old model")

        pl._memory_cache.clear()
        predictor = _train(seed=6, read_cache=False)
        # The cache entry was refreshed with the retrained model.
        with open(cache_file, "rb") as fh:
            assert pickle.load(fh).report.rmse_val == predictor.report.rmse_val

    def test_use_cache_false_touches_nothing(self, isolated_cache):
        _train(seed=7, use_cache=False)
        assert not _cache_file(isolated_cache, 7).exists()
        assert pl._memory_cache == {}

    def test_write_cache_false_skips_write(self, isolated_cache):
        _train(seed=8, write_cache=False)
        assert not _cache_file(isolated_cache, 8).exists()


def _race_worker(cache_dir, seed, queue):
    """Child-process body for the cold-cache race (module-level: picklable)."""
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    pl._memory_cache.clear()
    predictor = pl.get_trained_predictor(APP, TINY, seed=seed)
    queue.put(predictor.report.rmse_val)


class TestColdCacheRace:
    def test_concurrent_trainers_share_one_model(self, isolated_cache):
        """Two processes racing on a cold cache: the lock serializes them,
        the loser loads the winner's entry, and the file stays whole."""
        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_race_worker, args=(isolated_cache, 9, queue))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        # Both got the same model (deterministic training + shared cache).
        assert results[0] == results[1]
        cache_file = _cache_file(isolated_cache, 9)
        with open(cache_file, "rb") as fh:
            assert pickle.load(fh).report.rmse_val == results[0]
        # Exactly one published entry, no temp debris.
        pkls = list(isolated_cache.glob("*.pkl"))
        assert pkls == [cache_file]
