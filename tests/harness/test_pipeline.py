"""Pipeline registry and budget tests (no heavy training)."""

import numpy as np
import pytest

from repro.apps import hotel_reservation, social_network
from repro.harness.pipeline import (
    BUDGETS,
    AppSpec,
    app_spec,
    collection_loads,
    make_cluster,
    resolve_budget,
)


class TestBudgets:
    def test_known_budgets(self):
        assert set(BUDGETS) == {"small", "medium", "large"}
        for budget in BUDGETS.values():
            assert budget.total_samples > 0

    def test_resolve_by_name(self):
        assert resolve_budget("small").name == "small"
        assert resolve_budget(BUDGETS["large"]) is BUDGETS["large"]

    def test_resolve_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET", "small")
        assert resolve_budget(None).name == "small"

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="unknown budget"):
            resolve_budget("galactic")


class TestAppSpecs:
    def test_lookup_by_name_and_graph(self):
        spec = app_spec("social_network")
        assert spec.qos.latency_ms == 500.0
        graph = social_network()
        assert app_spec(graph).name == "social_network"

    def test_hotel_spec(self):
        spec = app_spec("hotel_reservation")
        assert spec.qos.latency_ms == 200.0
        assert spec.fig11_loads[0] == 1000
        assert spec.fig11_loads[-1] == 3700

    def test_social_fig11_loads_match_paper(self):
        spec = app_spec("social_network")
        assert spec.fig11_loads == (50, 100, 150, 200, 250, 300, 350, 400, 450)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            app_spec("tinder_for_dogs")

    def test_collection_loads_span_range(self):
        spec = app_spec("social_network")
        loads = collection_loads(spec, resolve_budget("medium"))
        assert len(loads) == BUDGETS["medium"].collection_loads
        lo, hi = spec.collection_load_range
        assert loads[0] == pytest.approx(lo)
        assert loads[-1] == pytest.approx(hi)


class TestMakeCluster:
    def test_builds_runnable_cluster(self):
        graph = hotel_reservation()
        cluster = make_cluster(graph, users=500, seed=1)
        stats = cluster.step()
        assert stats.rps > 0
        assert cluster.graph is graph

    def test_pattern_override(self):
        from repro.workload.patterns import DiurnalLoad

        graph = social_network()
        cluster = make_cluster(
            graph, users=0, pattern=DiurnalLoad(base=100, amplitude=50)
        )
        assert cluster.workload.pattern.base == 100

    def test_behaviors_injected(self):
        from repro.apps import RedisLogSync

        graph = social_network()
        sync = RedisLogSync(graph)
        cluster = make_cluster(graph, users=50, behaviors=(sync,))
        assert cluster.engine.behaviors == (sync,)
