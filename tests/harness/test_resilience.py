"""Resilience harness tests: recovery metric, episodes, sweep determinism."""

import numpy as np
import pytest

from repro.core.manager import StaticManager
from repro.core.qos import QoSTarget
from repro.harness.resilience import (
    ResilienceResult,
    format_resilience_report,
    recovery_time,
    run_resilience_episode,
    sweep_resilience,
)
from repro.sim.cluster import ClusterSimulator
from repro.sim.faults import FaultInjector
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_graph

QOS_MS = 100.0


class TestRecoveryTime:
    def test_no_violation_is_zero(self):
        p99 = np.full(20, 50.0)
        assert recovery_time(p99, QOS_MS, start_idx=5, fault_intervals=4) == 0.0

    def test_counts_onset_to_recovery(self):
        p99 = np.full(20, 50.0)
        p99[7:11] = 300.0  # violation starts 2 intervals after onset at 5
        assert recovery_time(p99, QOS_MS, start_idx=5, fault_intervals=4) == 6.0

    def test_never_recovered_runs_to_episode_end(self):
        p99 = np.full(10, 50.0)
        p99[6:] = 300.0
        assert recovery_time(p99, QOS_MS, start_idx=5, fault_intervals=3) == 5.0

    def test_violation_outside_window_not_attributed(self):
        p99 = np.full(30, 50.0)
        p99[25] = 300.0  # far past fault window + grace
        assert recovery_time(p99, QOS_MS, start_idx=2, fault_intervals=3) == 0.0

    def test_onset_past_series_end(self):
        assert recovery_time(np.full(5, 300.0), QOS_MS, 10, 3) == 0.0


def make_fault_cluster(profile, users=150, seed=0):
    graph = make_tiny_graph()
    workload = Workload(
        graph, ConstantLoad(users), RequestMix.from_ratios({"Read": 9, "Write": 1})
    )
    injector = FaultInjector(profile, graph.n_tiers, seed=seed)
    return ClusterSimulator(graph, workload, seed=seed, faults=injector)


class TestRunResilienceEpisode:
    def test_fault_free_cluster_supported(self):
        graph = make_tiny_graph()
        workload = Workload(
            graph, ConstantLoad(100),
            RequestMix.from_ratios({"Read": 9, "Write": 1}),
        )
        cluster = ClusterSimulator(graph, workload, seed=0)
        result = run_resilience_episode(
            StaticManager(cluster.max_alloc * 0.5), cluster, 20,
            QoSTarget(500.0), warmup=5,
        )
        assert result.profile == "none"
        assert result.n_faults == 0
        assert result.dropped_intervals == 0

    def test_counters_and_metadata(self):
        cluster = make_fault_cluster("chaos", seed=1)
        manager = StaticManager(cluster.max_alloc * 0.5)
        result = run_resilience_episode(
            manager, cluster, 40, QoSTarget(500.0), warmup=5
        )
        assert result.manager_name == manager.name
        assert result.profile == "chaos"
        assert 0.0 <= result.qos_fraction <= 1.0
        assert result.n_faults == len(
            cluster.faults.physics_events(until=cluster.telemetry.latest.time)
        )
        assert len(result.recovery_times) == result.n_faults
        assert result.dropped_intervals == cluster.faults.dropped_intervals
        # A manager without safety counters reports them as unknown.
        assert result.mispredictions is None
        assert result.fallbacks is None
        assert "-" in result.row()

    def test_duration_must_exceed_warmup(self):
        cluster = make_fault_cluster("crash-storm")
        with pytest.raises(ValueError, match="warmup"):
            run_resilience_episode(
                StaticManager(cluster.max_alloc), cluster, 5,
                QoSTarget(500.0), warmup=5,
            )

    def test_mean_recovery(self):
        result = ResilienceResult(
            manager_name="m", profile="p", users=1.0, qos_ms=1.0,
            duration=1, qos_fraction=1.0, mean_total_cpu=1.0,
            max_total_cpu=1.0, n_faults=2, recovery_times=[2.0, 4.0],
        )
        assert result.mean_recovery == pytest.approx(3.0)
        empty = ResilienceResult(
            manager_name="m", profile="p", users=1.0, qos_ms=1.0,
            duration=1, qos_fraction=1.0, mean_total_cpu=1.0,
            max_total_cpu=1.0, n_faults=0,
        )
        assert empty.mean_recovery == 0.0


class TestSweepResilience:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return sweep_resilience(
            "social_network",
            profiles=["crash-storm", "telemetry-dropout"],
            manager_names=["autoscale-cons", "static"],
            users=250.0, duration=30, seed=3, warmup=5,
        )

    def test_grid_order_and_pairing(self, serial_results):
        cells = [(r.profile, r.manager_name) for r in serial_results]
        assert cells == [
            ("crash-storm", "AutoScaleCons"),
            ("crash-storm", "static"),
            ("telemetry-dropout", "AutoScaleCons"),
            ("telemetry-dropout", "static"),
        ]
        # Same profile -> same fault schedule for every manager (paired).
        assert (serial_results[0].n_faults == serial_results[1].n_faults)

    def test_parallel_matches_serial(self, serial_results):
        parallel = sweep_resilience(
            "social_network",
            profiles=["crash-storm", "telemetry-dropout"],
            manager_names=["autoscale-cons", "static"],
            users=250.0, duration=30, seed=3, warmup=5, jobs=2,
        )
        for a, b in zip(serial_results, parallel):
            assert a.qos_fraction == b.qos_fraction
            assert a.mean_total_cpu == b.mean_total_cpu
            assert a.recovery_times == b.recovery_times
            assert a.dropped_intervals == b.dropped_intervals

    def test_report_formatting(self, serial_results):
        report = format_resilience_report(serial_results)
        assert "crash-storm" in report
        assert "P(QoS)" in report
        assert "drop/corrupt" in report
