"""Parallel episode harness tests: ordering, determinism, retry."""

import os

import pytest

from repro.harness.parallel import (
    RETRY_SEED_BUMP,
    EpisodeTask,
    RunSummary,
    resolve_jobs,
    run_episodes,
)


# Worker functions must be module-level so the process pool can pickle
# them by reference.

def _square(seed: int, base: int = 0) -> int:
    return base + seed * seed


def _fails_below_bump(seed: int) -> int:
    """Deterministic failure for the original seed; the retried (bumped)
    seed succeeds — the harness's crashed-simulation recovery story."""
    if seed < RETRY_SEED_BUMP:
        raise RuntimeError(f"bad seed {seed}")
    return seed


def _always_fails(seed: int) -> int:
    raise ValueError("doomed")


def _tasks(fn, n=6):
    return [
        EpisodeTask(index=i, label=f"ep{i}", fn=fn, kwargs={"seed": i})
        for i in range(n)
    ]


class TestResolveJobs:
    def test_none_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_is_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_literal(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_none_consults_repro_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_repro_jobs_zero_means_per_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_repro_jobs_empty_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs(None) == 1

    def test_repro_jobs_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_explicit_jobs_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2


class TestRunEpisodes:
    def test_serial_results_in_order(self):
        summary = run_episodes(_tasks(_square))
        assert summary.jobs == 1
        assert summary.results == [i * i for i in range(6)]
        assert not summary.failures

    def test_parallel_matches_serial(self):
        serial = run_episodes(_tasks(_square), jobs=1)
        parallel = run_episodes(_tasks(_square), jobs=2)
        assert parallel.jobs == 2
        assert parallel.results == serial.results
        assert [o.index for o in parallel.outcomes] == list(range(6))

    def test_jobs_clamped_to_task_count(self):
        summary = run_episodes(_tasks(_square, n=2), jobs=16)
        assert summary.jobs == 2

    def test_retry_bumps_seed_and_recovers(self):
        summary = run_episodes(_tasks(_fails_below_bump, n=3))
        assert not summary.failures
        assert [o.attempts for o in summary.outcomes] == [2, 2, 2]
        assert summary.results == [RETRY_SEED_BUMP + i for i in range(3)]

    def test_permanent_failure_surfaced_not_raised(self):
        summary = run_episodes(_tasks(_always_fails, n=3), jobs=2)
        assert len(summary.failures) == 3
        assert all("ValueError: doomed" in o.error for o in summary.failures)
        assert summary.results == []
        with pytest.raises(RuntimeError, match="all 3 episodes failed"):
            summary.raise_if_no_results()

    def test_partial_failure_keeps_survivors(self):
        tasks = _tasks(_square, n=2) + [
            EpisodeTask(index=2, label="bad", fn=_always_fails, kwargs={"seed": 2})
        ]
        summary = run_episodes(tasks)
        assert summary.results == [0, 1]
        assert len(summary.failures) == 1
        summary.raise_if_no_results()  # survivors present: no raise

    def test_progress_callback_sees_every_episode(self):
        seen = []
        run_episodes(
            _tasks(_square, n=4),
            progress=lambda outcome, done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_summary_format_mentions_failures(self):
        summary = run_episodes(_tasks(_always_fails, n=2))
        text = summary.format()
        assert "2 episodes" in text and "FAILED" in text

    def test_empty_summary(self):
        RunSummary().raise_if_no_results()  # no episodes: nothing to raise

    def test_repro_jobs_env_fans_out_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        summary = run_episodes(_tasks(_square))
        assert summary.jobs == 2
        assert summary.results == [i * i for i in range(6)]


class TestWorkerWarnings:
    def test_retry_warning_carried_on_outcome(self):
        summary = run_episodes(_tasks(_fails_below_bump, n=2))
        for outcome in summary.outcomes:
            assert any("retrying with bumped seed" in w
                       for w in outcome.warnings)

    def test_retry_warning_relogged_in_parent(self, caplog):
        # The worker-side log record dies with a spawn worker; the
        # parent must re-emit the warning when the outcome arrives.
        with caplog.at_level("WARNING", logger="repro.harness.parallel"):
            run_episodes(_tasks(_fails_below_bump, n=1), jobs=2)
        assert any("retrying with bumped seed" in r.message
                   for r in caplog.records)

    def test_clean_episodes_carry_no_warnings(self):
        summary = run_episodes(_tasks(_square, n=2))
        assert all(o.warnings == [] for o in summary.outcomes)
