"""Pipeline-level fan-out: parallel collection/training/sweeps produce
exactly the serial results (same seeds, independent episodes)."""

import numpy as np
import pytest

from repro.apps import hotel_reservation
from repro.baselines.autoscale import AutoScale
from repro.core.qos import QoSTarget
from repro.harness import pipeline as pl
from repro.harness.experiment import sweep_loads
from repro.harness.pipeline import Budget, collect_training_data
from tests.conftest import make_tiny_cluster, make_tiny_graph


def test_collect_training_data_parallel_identical(monkeypatch):
    """The acceptance criterion: ``jobs=4`` collection is numerically
    identical to the serial run for the same seed."""
    graph = hotel_reservation()
    serial = collect_training_data(graph, "small", seed=5, jobs=1)
    fanned = collect_training_data(graph, "small", seed=5, jobs=4)
    for name in ("X_RH", "X_LH", "X_RC", "y_lat", "y_viol"):
        np.testing.assert_array_equal(getattr(serial, name), getattr(fanned, name))


def test_trained_predictor_identical_across_jobs(tmp_path, monkeypatch):
    """End to end: fanned-out collection (including the on-policy
    refinement round) trains the same model as the serial pipeline."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    tiny = Budget("tiny", collection_loads=2, seconds_per_load=20, epochs=2,
                  batch_size=32, refine_rounds=1)
    pl._memory_cache.clear()
    serial = pl.get_trained_predictor("hotel_reservation", tiny, seed=2,
                                      use_cache=False)
    fanned = pl.get_trained_predictor("hotel_reservation", tiny, seed=2,
                                      use_cache=False, jobs=2)
    pl._memory_cache.clear()
    for a, b in zip(serial.cnn.params(), fanned.cnn.params()):
        np.testing.assert_array_equal(a, b)


def _tiny_autoscale():
    graph = make_tiny_graph()
    return AutoScale.opt(graph.min_alloc(), graph.max_alloc())


def test_sweep_loads_parallel_matches_serial():
    qos = QoSTarget(200.0)
    kwargs = dict(
        manager_factory=_tiny_autoscale,
        cluster_factory=make_tiny_cluster,
        loads=[50, 100, 150],
        duration=20,
        qos=qos,
        seed=3,
        warmup=5,
    )
    serial = sweep_loads(**kwargs)
    fanned = sweep_loads(**kwargs, jobs=2)
    assert [r.users for r in fanned] == [50, 100, 150]
    for a, b in zip(serial, fanned):
        assert a.mean_total_cpu == pytest.approx(b.mean_total_cpu)
        assert a.max_total_cpu == pytest.approx(b.max_total_cpu)
        assert a.qos_fraction == pytest.approx(b.qos_fraction)
