"""Experiment harness tests."""

import numpy as np
import pytest

from repro.core.manager import StaticManager
from repro.core.qos import QoSTarget
from repro.harness.experiment import run_episode, sweep_loads
from repro.harness.reporting import format_series, format_table
from tests.conftest import make_tiny_cluster


QOS = QoSTarget(200.0)


class TestRunEpisode:
    def test_metrics_computed(self):
        cluster = make_tiny_cluster(users=50, seed=0)
        manager = StaticManager(np.full(cluster.n_tiers, 2.0))
        result = run_episode(manager, cluster, duration=30, qos=QOS, warmup=5)
        assert result.duration == 30
        assert len(result.telemetry) == 30
        assert result.mean_total_cpu == pytest.approx(8.0)
        assert result.max_total_cpu == pytest.approx(8.0)
        assert 0.0 <= result.qos_fraction <= 1.0
        assert result.users == 50

    def test_warmup_excluded(self):
        cluster = make_tiny_cluster(users=50, seed=0)

        class TwoPhase(StaticManager):
            def __init__(self, n):
                super().__init__(np.full(n, 8.0))
                self.calls = 0

            def decide(self, log):
                self.calls += 1
                if self.calls > 10:
                    return np.full(len(self.alloc), 1.0)
                return self.alloc.copy()

        manager = TwoPhase(cluster.n_tiers)
        result = run_episode(manager, cluster, duration=30, qos=QOS, warmup=10)
        # Only the 1.0-per-tier phase counts.
        assert result.mean_total_cpu == pytest.approx(4.0)

    def test_duration_must_exceed_warmup(self):
        cluster = make_tiny_cluster()
        with pytest.raises(ValueError):
            run_episode(StaticManager(np.ones(4)), cluster, 5, QOS, warmup=10)

    def test_manager_reset_called(self):
        cluster = make_tiny_cluster(users=10, seed=0)

        class Probe(StaticManager):
            reset_called = False

            def reset(self):
                self.reset_called = True

        manager = Probe(np.ones(cluster.n_tiers))
        run_episode(manager, cluster, 12, QOS, warmup=2)
        assert manager.reset_called

    def test_row_format(self):
        cluster = make_tiny_cluster(users=10, seed=0)
        result = run_episode(
            StaticManager(np.ones(cluster.n_tiers)), cluster, 12, QOS, warmup=2
        )
        row = result.row()
        assert row[0] == "static"
        assert len(row) == 5


class TestSweepLoads:
    def test_one_result_per_load(self):
        results = sweep_loads(
            manager_factory=lambda: StaticManager(np.full(4, 2.0)),
            cluster_factory=lambda users, seed: make_tiny_cluster(users, seed),
            loads=[20, 50, 80],
            duration=15,
            qos=QOS,
            warmup=3,
        )
        assert [r.users for r in results] == [20, 50, 80]


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("s", [1, 2], [0.5, 0.75], "x", "y")
        assert "0.500" in text and "0.750" in text
