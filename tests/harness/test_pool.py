"""Warm worker-pool tests: reuse, broadcast, cleanup, crash recovery."""

import gc
import os
import pickle

import pytest

from repro.harness.parallel import EpisodeTask, run_episodes
from repro.harness.pool import (
    ModelRef,
    PoolRunStats,
    WorkerPool,
    _expected_cost,
    _schedule,
    close_shared_pool,
    shared_pool,
)

_PARENT_PID = os.getpid()


def shm_segments() -> set:
    """Live POSIX shared-memory segments (Python names them psm_*)."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # non-Linux fallback: nothing to check
        return set()


# Worker functions must be module-level so worker processes can pickle
# them by reference.

def _identify(seed: int, predictor=None) -> tuple:
    """Echo back what the worker actually received for ``predictor``."""
    payload = None if predictor is None else predictor.get("tag")
    return (seed, payload, os.getpid())


def _square(seed: int) -> int:
    return seed * seed


def _square_costed(seed: int, seconds: int, users: float) -> int:
    return seed * seed


def _crash_in_worker(seed: int) -> int:
    """Hard-kill the hosting process — but only if it's a pool worker."""
    if seed == 1 and os.getpid() != _PARENT_PID:
        os._exit(17)
    return seed * 10


def _unpicklable_result(seed: int):
    return lambda: seed  # a closure cannot cross the result queue


def _tasks(fn, n=4, **extra):
    return [
        EpisodeTask(index=i, label=f"ep{i}", fn=fn,
                    kwargs={"seed": i, **extra})
        for i in range(n)
    ]


def _model(tag: str, size: int = 2000) -> dict:
    return {"tag": tag, "weights": list(range(size))}


class TestBroadcast:
    def test_model_ref_replaces_predictor_kwarg(self):
        model = _model("v1")
        with WorkerPool(jobs=2) as pool:
            outcomes, stats = pool.run(_tasks(_identify, predictor=model))
        assert [o.result[:2] for o in outcomes] == [
            (i, "v1") for i in range(4)
        ]
        assert stats.broadcast_publishes == 1
        assert stats.broadcast_bytes == len(
            pickle.dumps(model, pickle.HIGHEST_PROTOCOL)
        )
        # Every worker deserializes at most once; the rest are hits.
        assert stats.cache_misses <= 2
        assert stats.cache_hits + stats.cache_misses == 4

    def test_task_payload_shrinks(self):
        model = _model("v1", size=200_000)
        task = _tasks(_identify, n=1, predictor=model)[0]
        fat = len(pickle.dumps(task.kwargs, pickle.HIGHEST_PROTOCOL))
        with WorkerPool(jobs=1) as pool:
            ref, _ = pool.broadcast(model)
        slim = len(pickle.dumps(
            {**task.kwargs, "predictor": ref}, pickle.HIGHEST_PROTOCOL
        ))
        assert fat / slim > 50

    def test_same_model_published_once_across_runs(self):
        model = _model("v1")
        with WorkerPool(jobs=2) as pool:
            _, first = pool.run(_tasks(_identify, predictor=model))
            _, second = pool.run(_tasks(_identify, predictor=model))
        assert first.broadcast_publishes == 1
        assert second.broadcast_publishes == 0
        assert second.broadcast_bytes == 0

    def test_none_predictor_stays_inline(self):
        with WorkerPool(jobs=2) as pool:
            outcomes, stats = pool.run(_tasks(_identify, predictor=None))
        assert stats.broadcast_publishes == 0
        assert [o.result[1] for o in outcomes] == [None] * 4

    def test_fingerprint_change_invalidates_worker_cache(self):
        # Continuous-learning promotion: a new predictor object mid-run
        # must republish under a new fingerprint and force a worker-side
        # cache miss — stale caches must never serve the old model.
        with WorkerPool(jobs=1) as pool:
            _, v1 = pool.run(_tasks(_identify, n=2, predictor=_model("v1")))
            out2, v2 = pool.run(_tasks(_identify, n=2, predictor=_model("v2")))
        assert v1.broadcast_publishes == 1
        assert v1.cache_misses == 1 and v1.cache_hits == 1
        assert v2.broadcast_publishes == 1  # new fingerprint -> republish
        assert v2.cache_misses == 1  # the single worker must miss once
        assert [o.result[1] for o in out2] == ["v2", "v2"]


class TestWarmReuse:
    def test_two_sweeps_on_warm_pool_match_two_cold_pools(self):
        model = _model("v1")
        first = _tasks(_identify, n=3, predictor=model)
        second = _tasks(_identify, n=3, predictor=model)

        cold_results = []
        for tasks in (first, second):
            with WorkerPool(jobs=2, broadcast=False) as cold:
                outcomes, _ = cold.run(tasks)
                cold_results.append([o.result[:2] for o in outcomes])

        with WorkerPool(jobs=2) as warm:
            out1, stats1 = warm.run(first)
            out2, stats2 = warm.run(second)
        assert [o.result[:2] for o in out1] == cold_results[0]
        assert [o.result[:2] for o in out2] == cold_results[1]
        assert not stats1.reused and stats2.reused

    def test_run_episodes_reports_pool_reuse(self):
        with WorkerPool(jobs=2) as pool:
            run_episodes(_tasks(_square), jobs=2, pool=pool)
            summary = run_episodes(_tasks(_square), jobs=2, pool=pool)
        assert summary.pool_reused
        assert summary.results == [i * i for i in range(4)]

    def test_shared_pool_is_reused_and_replaced_when_grown(self):
        close_shared_pool()
        try:
            pool = shared_pool(2)
            assert shared_pool(1) is pool  # smaller request: same pool
            bigger = shared_pool(3)
            assert bigger is not pool and pool.closed
        finally:
            close_shared_pool()


class TestCleanup:
    def test_no_leaked_segments_after_close(self):
        before = shm_segments()
        with WorkerPool(jobs=2) as pool:
            pool.run(_tasks(_identify, predictor=_model("v1")))
            assert shm_segments() - before  # live while the pool is open
        assert shm_segments() - before == set()

    def test_no_leaked_segments_after_gc_without_close(self):
        before = shm_segments()
        pool = WorkerPool(jobs=1)
        pool.run(_tasks(_identify, n=1, predictor=_model("v1")))
        del pool
        gc.collect()
        assert shm_segments() - before == set()

    def test_no_leaked_segments_after_worker_crash(self):
        before = shm_segments()
        with WorkerPool(jobs=2) as pool:
            pool.run(_tasks(_crash_in_worker, predictor=_model("v1")))
        assert shm_segments() - before == set()

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(jobs=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(_tasks(_square, n=1))


class TestCrashRecovery:
    def test_worker_crash_recovered_inline(self):
        with WorkerPool(jobs=2) as pool:
            outcomes, stats = pool.run(_tasks(_crash_in_worker))
        assert [o.result for o in outcomes] == [0, 10, 20, 30]
        assert stats.recovered_inline >= 1
        crashed = outcomes[1]
        # The lost dispatch counts as an attempt with measured time, so
        # harness_episode_seconds is not polluted with zeros.
        assert crashed.attempts == 2
        assert crashed.seconds > 0.0
        assert any("pool-level failure" in w for w in crashed.warnings)

    def test_pool_survives_crash_for_next_run(self):
        with WorkerPool(jobs=2) as pool:
            pool.run(_tasks(_crash_in_worker))
            outcomes, _ = pool.run(_tasks(_square))
        assert [o.result for o in outcomes] == [0, 1, 4, 9]

    def test_unpicklable_result_recovered_inline(self):
        with WorkerPool(jobs=2) as pool:
            outcomes, stats = pool.run(_tasks(_unpicklable_result, n=2))
        assert stats.recovered_inline == 2
        assert all(o.ok and callable(o.result) for o in outcomes)
        assert all(o.attempts == 2 and o.seconds > 0.0 for o in outcomes)


class TestScheduling:
    def test_longest_expected_first(self):
        tasks = [
            EpisodeTask(index=i, label=f"s{i}", fn=_square,
                        kwargs={"seed": i, "seconds": s, "users": u})
            for i, (s, u) in enumerate([(10, 100), (10, 300), (5, 300)])
        ]
        # costs: 1000, 3000, 1500 -> heaviest first
        assert _schedule(tasks) == [1, 2, 0]

    def test_unknown_costs_keep_submission_order(self):
        tasks = _tasks(_square, n=3)
        assert _schedule(tasks) == [0, 1, 2]
        assert _expected_cost(tasks[0]) is None

    def test_reordering_never_reorders_results(self):
        tasks = [
            EpisodeTask(index=i, label=f"s{i}", fn=_square_costed,
                        kwargs={"seed": i, "seconds": 10 - i, "users": 1.0})
            for i in range(5)
        ]
        with WorkerPool(jobs=2) as pool:
            outcomes, _ = pool.run(tasks)
        assert [o.index for o in outcomes] == list(range(5))
        assert [o.result for o in outcomes] == [i * i for i in range(5)]


class TestStats:
    def test_stats_are_plain_counters(self):
        stats = PoolRunStats()
        assert stats.broadcast_bytes == 0 and not stats.reused

    def test_model_ref_is_slim_and_frozen(self):
        ref = ModelRef("abc", "psm_test", 10)
        assert len(pickle.dumps(ref)) < 200
        with pytest.raises(AttributeError):
            ref.fingerprint = "other"
