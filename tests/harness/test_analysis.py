"""Episode analysis helper tests."""

import numpy as np
import pytest

from repro.core.qos import QoSTarget
from repro.harness.analysis import (
    allocation_churn,
    mean_drain_time,
    summarize,
    tier_stats,
    violation_episodes,
)
from repro.sim.telemetry import TelemetryLog
from tests.sim.test_telemetry import make_stats

QOS = QoSTarget(200.0)


def log_from_p99(series, alloc=2.0):
    log = TelemetryLog()
    for i, p99 in enumerate(series):
        log.append(make_stats(time=float(i), p99=p99, alloc=alloc))
    return log


class TestViolationEpisodes:
    def test_finds_contiguous_runs(self):
        log = log_from_p99([100, 300, 400, 100, 100, 500, 100])
        episodes = violation_episodes(log, QOS)
        assert [(e.start, e.end) for e in episodes] == [(1, 3), (5, 6)]
        assert episodes[0].peak_ms == pytest.approx(400.0)
        assert episodes[0].duration == 2

    def test_open_ended_episode(self):
        log = log_from_p99([100, 300, 400])
        episodes = violation_episodes(log, QOS)
        assert [(e.start, e.end) for e in episodes] == [(1, 3)]

    def test_no_violations(self):
        log = log_from_p99([100, 150, 120])
        assert violation_episodes(log, QOS) == []
        assert mean_drain_time(log, QOS) == 0.0

    def test_mean_drain_time(self):
        log = log_from_p99([300, 300, 100, 300, 100])
        assert mean_drain_time(log, QOS) == pytest.approx(1.5)


class TestTierStats:
    def test_ordering_and_values(self):
        log = TelemetryLog()
        for _ in range(4):
            stats = make_stats(alloc=1.0, n=3)
            stats.cpu_alloc[:] = [1.0, 5.0, 2.0]
            stats.cpu_util[:] = [0.2, 0.8, 0.5]
            log.append(stats)
        result = tier_stats(log, ["a", "b", "c"])
        assert [s.name for s in result] == ["b", "c", "a"]
        assert result[0].mean_alloc == pytest.approx(5.0)
        assert result[0].mean_util == pytest.approx(0.8)


class TestChurnAndSummary:
    def test_churn(self):
        log = log_from_p99([100, 100, 100])
        assert allocation_churn(log) == 0.0
        log2 = TelemetryLog()
        for alloc in (1.0, 2.0, 1.0):
            log2.append(make_stats(alloc=alloc, n=2))
        assert allocation_churn(log2) == pytest.approx(2.0)

    def test_churn_short_log(self):
        assert allocation_churn(log_from_p99([100])) == 0.0

    def test_summarize_keys(self):
        log = log_from_p99([100, 300, 100])
        summary = summarize(log, QOS, ["a", "b", "c"])
        assert summary["qos_fraction"] == pytest.approx(2 / 3)
        assert summary["violation_episodes"] == 1
        assert len(summary["hottest_tiers"]) == 3


class TestFigures:
    def test_sparkline_width_and_range(self):
        from repro.harness.figures import sparkline

        strip = sparkline([0, 1, 2, 3], width=8)
        assert len(strip) == 8
        assert strip[0] == " " and strip[-1] == "@"

    def test_sparkline_empty(self):
        from repro.harness.figures import sparkline

        assert sparkline([], width=5) == "     "

    def test_sparkline_pinned_scale(self):
        from repro.harness.figures import sparkline

        low = sparkline([1, 1], width=4, lo=0, hi=10)
        assert set(low) == {"."}

    def test_timeline_panel(self):
        from repro.harness.figures import timeline_panel

        text = timeline_panel("T", {"a": [1, 2], "bb": [2, 4]}, width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert "bb" in lines[2]

    def test_histogram(self):
        from repro.harness.figures import histogram

        text = histogram([1, 1, 2, 5], bins=2, title="H")
        assert text.startswith("H")
        assert "#" in text
