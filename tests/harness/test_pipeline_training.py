"""End-to-end pipeline training at the small budget (slower test).

Exercises ``get_trained_predictor`` / ``build_sinan_pipeline`` on the
real Hotel Reservation app with an isolated cache directory, including
the cache round-trip.
"""

import numpy as np
import pytest

from repro.harness import pipeline as pl


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    pl._memory_cache.clear()
    yield tmp_path
    pl._memory_cache.clear()


def test_small_budget_pipeline_end_to_end(isolated_cache):
    predictor = pl.get_trained_predictor("hotel_reservation", "small", seed=3)
    assert predictor.report is not None
    assert predictor.report.rmse_val > 0

    # Disk cache written and reloadable into a fresh memory cache.
    cached_files = list(isolated_cache.glob("predictor-hotel_reservation-*.pkl"))
    assert len(cached_files) == 1
    pl._memory_cache.clear()
    again = pl.get_trained_predictor("hotel_reservation", "small", seed=3)
    np.testing.assert_allclose(
        again.cnn.params()[0], predictor.cnn.params()[0]
    )

    # The full pipeline wires the manager and a runnable cluster.
    graph = pl.app_spec("hotel_reservation").graph_factory()
    manager, cluster = pl.build_sinan_pipeline(graph, users=1200, seed=3, budget="small")
    alloc = manager.decide(cluster.telemetry) if len(cluster.telemetry) else None
    stats = cluster.step(alloc)
    assert stats.rps > 0
