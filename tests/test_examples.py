"""Example scripts: compile and expose a main() entry point.

Full execution is exercised manually / by the benchmark pipeline (the
examples train models); here we guarantee they stay importable and
syntactically healthy.
"""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions
    # docstring present (examples double as documentation)
    assert ast.get_docstring(tree)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """All repro imports reference real modules/attributes."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
