"""CLI smoke tests (argument handling; heavy paths run at small budget)."""

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_train_defaults(self):
        args = _build_parser().parse_args(["train"])
        assert args.app == "social_network"
        assert args.budget is None
        assert args.seed == 0

    def test_run_manager_choices(self):
        args = _build_parser().parse_args(
            ["run", "--manager", "powerchief", "--users", "500"]
        )
        assert args.manager == "powerchief"
        assert args.users == 500.0
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "--manager", "nope"])

    def test_sweep_manager_list(self):
        args = _build_parser().parse_args(
            ["sweep", "--managers", "autoscale-opt,powerchief"]
        )
        assert args.managers == "autoscale-opt,powerchief"

    def test_explain_tier_flag(self):
        args = _build_parser().parse_args(["explain", "--tier", "graph-redis"])
        assert args.tier == "graph-redis"

    def test_jobs_flag_on_train_and_sweep(self):
        assert _build_parser().parse_args(["train"]).jobs is None
        assert _build_parser().parse_args(["train", "--jobs", "4"]).jobs == 4
        assert _build_parser().parse_args(["sweep", "--jobs", "0"]).jobs == 0

    def test_run_fault_profile_choices(self):
        args = _build_parser().parse_args(
            ["run", "--fault-profile", "crash-storm"]
        )
        assert args.fault_profile == "crash-storm"
        assert _build_parser().parse_args(["run"]).fault_profile is None
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "--fault-profile", "nope"])

    def test_resilience_defaults(self):
        args = _build_parser().parse_args(["resilience"])
        assert args.profiles == "crash-storm,telemetry-dropout"
        assert args.managers == "sinan,autoscale-cons,static"
        assert args.duration == 120
        assert args.jobs is None


class TestExecution:
    def test_run_autoscale_episode(self, capsys):
        code = main([
            "run", "--manager", "autoscale-opt", "--app", "hotel_reservation",
            "--users", "800", "--duration", "25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean CPU" in out
        assert "P(meet QoS)" in out

    def test_run_powerchief_episode(self, capsys):
        code = main([
            "run", "--manager", "powerchief", "--app", "social_network",
            "--users", "80", "--duration", "25",
        ])
        assert code == 0
        assert "PowerChief" in capsys.readouterr().out

    def test_run_with_fault_profile(self, capsys):
        code = main([
            "run", "--manager", "static", "--app", "social_network",
            "--users", "150", "--duration", "25",
            "--fault-profile", "telemetry-dropout",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:" in out
        assert "dropped" in out

    def test_resilience_sweep(self, capsys):
        code = main([
            "resilience", "--app", "social_network",
            "--profiles", "crash-storm", "--managers", "autoscale-cons,static",
            "--users", "150", "--duration", "25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Resilience under injected faults" in out
        assert "crash-storm" in out

    def test_sweep_parallel_episodes(self, capsys):
        code = main([
            "sweep", "--app", "social_network", "--managers", "powerchief",
            "--duration", "20", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "episodes in" in out
        assert "ERR" not in out
