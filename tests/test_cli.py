"""CLI smoke tests (argument handling; heavy paths run at small budget)."""

import json

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_train_defaults(self):
        args = _build_parser().parse_args(["train"])
        assert args.app == "social_network"
        assert args.budget is None
        assert args.seed == 0

    def test_run_manager_choices(self):
        args = _build_parser().parse_args(
            ["run", "--manager", "powerchief", "--users", "500"]
        )
        assert args.manager == "powerchief"
        assert args.users == 500.0
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "--manager", "nope"])

    def test_sweep_manager_list(self):
        args = _build_parser().parse_args(
            ["sweep", "--managers", "autoscale-opt,powerchief"]
        )
        assert args.managers == "autoscale-opt,powerchief"

    def test_explain_tier_flag(self):
        args = _build_parser().parse_args(["explain", "--tier", "graph-redis"])
        assert args.tier == "graph-redis"

    def test_jobs_flag_on_train_and_sweep(self):
        assert _build_parser().parse_args(["train"]).jobs is None
        assert _build_parser().parse_args(["train", "--jobs", "4"]).jobs == 4
        assert _build_parser().parse_args(["sweep", "--jobs", "0"]).jobs == 0

    def test_run_fault_profile_choices(self):
        args = _build_parser().parse_args(
            ["run", "--fault-profile", "crash-storm"]
        )
        assert args.fault_profile == "crash-storm"
        assert _build_parser().parse_args(["run"]).fault_profile is None
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "--fault-profile", "nope"])

    def test_resilience_defaults(self):
        args = _build_parser().parse_args(["resilience"])
        assert args.profiles == "crash-storm,telemetry-dropout"
        assert args.managers == "sinan,autoscale-cons,static"
        assert args.duration == 120
        assert args.jobs is None

    def test_run_obs_flags_default_off(self):
        args = _build_parser().parse_args(["run"])
        assert args.trace is None
        assert args.metrics_out is None
        assert args.audit_out is None
        assert args.trace_sample == 1

    def test_run_obs_flags_parse(self):
        args = _build_parser().parse_args([
            "run", "--trace", "ep.trace", "--metrics-out", "m.prom",
            "--audit-out", "a.jsonl", "--trace-sample", "5",
        ])
        assert args.trace == "ep.trace"
        assert args.metrics_out == "m.prom"
        assert args.audit_out == "a.jsonl"
        assert args.trace_sample == 5

    def test_run_continuous_flag(self):
        assert not _build_parser().parse_args(["run"]).continuous
        args = _build_parser().parse_args(["run", "--continuous"])
        assert args.continuous

    def test_retrain_defaults(self):
        args = _build_parser().parse_args(["retrain"])
        assert args.users == 250
        assert args.duration == 240
        assert args.drift_start == 60.0
        assert args.drift_ramp == 30.0
        assert args.drift_capacity == 0.55
        assert args.registry is None
        assert not args.require_promotion
        assert args.audit_out is None  # obs flags available

    def test_multitenant_defaults(self):
        args = _build_parser().parse_args(["multitenant"])
        assert args.cluster_cpu == 240.0
        assert args.duration == 160
        assert args.manager == "sinan"
        assert args.seeds == 1
        assert args.jobs is None
        assert args.audit_out is None  # obs flags available
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["multitenant", "--manager", "nope"])

    def test_audit_subcommand(self):
        args = _build_parser().parse_args(
            ["audit", "a.jsonl", "--interval", "7", "--qos", "500"]
        )
        assert args.file == "a.jsonl"
        assert args.interval == 7
        assert args.qos == 500.0
        assert _build_parser().parse_args(["audit", "a.jsonl"]).interval is None
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["audit"])  # file is required


class TestExecution:
    def test_run_autoscale_episode(self, capsys):
        code = main([
            "run", "--manager", "autoscale-opt", "--app", "hotel_reservation",
            "--users", "800", "--duration", "25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean CPU" in out
        assert "P(meet QoS)" in out

    def test_run_powerchief_episode(self, capsys):
        code = main([
            "run", "--manager", "powerchief", "--app", "social_network",
            "--users", "80", "--duration", "25",
        ])
        assert code == 0
        assert "PowerChief" in capsys.readouterr().out

    def test_run_with_fault_profile(self, capsys):
        code = main([
            "run", "--manager", "static", "--app", "social_network",
            "--users", "150", "--duration", "25",
            "--fault-profile", "telemetry-dropout",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:" in out
        assert "dropped" in out

    def test_resilience_sweep(self, capsys):
        code = main([
            "resilience", "--app", "social_network",
            "--profiles", "crash-storm", "--managers", "autoscale-cons,static",
            "--users", "150", "--duration", "25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Resilience under injected faults" in out
        assert "crash-storm" in out

    def test_sweep_parallel_episodes(self, capsys):
        code = main([
            "sweep", "--app", "social_network", "--managers", "powerchief",
            "--duration", "20", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "episodes in" in out
        assert "ERR" not in out

    def test_multitenant_episode(self, capsys):
        code = main([
            "multitenant", "--manager", "autoscale-cons",
            "--duration", "30", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "credit vs static" in out
        for tenant in ("social", "hotel", "media"):
            assert tenant in out

    def test_multitenant_obs_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "mt.json"
        audit = tmp_path / "mt.jsonl"
        code = main([
            "multitenant", "--manager", "autoscale-cons",
            "--cluster-cpu", "170", "--duration", "30",
            "--metrics-out", str(metrics), "--audit-out", str(audit),
        ])
        assert code == 0
        capsys.readouterr()
        dump = json.loads(metrics.read_text())
        samples = dump["tenant_cpu_granted"]["samples"]
        assert {s["labels"]["tenant"] for s in samples} >= {
            "social", "hotel", "media"
        }
        kinds = {json.loads(line).get("record") for line in
                 audit.read_text().splitlines()}
        assert "arbitration" in kinds


class TestObservabilityArtifacts:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "episode.trace"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "run", "--manager", "autoscale-opt", "--app", "social_network",
            "--users", "100", "--duration", "20",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote trace:" in out
        assert "wrote metrics:" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]  # Perfetto/chrome://tracing loadable
        text = metrics.read_text()
        assert "# TYPE engine_intervals_total counter" in text
        assert "engine_intervals_total 20" in text

    def test_trace_sampling_reduces_spans(self, tmp_path):
        sizes = {}
        for k in (1, 5):
            trace = tmp_path / f"sample{k}.trace"
            assert main([
                "run", "--manager", "static", "--app", "social_network",
                "--users", "100", "--duration", "20",
                "--trace", str(trace), "--trace-sample", str(k),
            ]) == 0
            doc = json.loads(trace.read_text())
            sizes[k] = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
        assert 0 < sizes[5] < sizes[1]

    def test_audit_round_trip_through_cli(self, tmp_path, capsys):
        from repro.obs import AuditLog, AuditRecord
        from repro.obs.audit import REASON_BOOST

        log = AuditLog()
        for i in range(3):
            log.append(AuditRecord(
                interval=i, time=float(i), measured_p99_ms=120.0 + i,
                rps=800.0, total_cpu=12.0, n_candidates=9,
                chosen_kind="scale_up", chosen_total_cpu=14.0,
                fallback_reason=REASON_BOOST if i == 2 else None,
            ))
        path = tmp_path / "audit.jsonl"
        log.write_jsonl(path)

        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 decisions (1 on safety/fallback paths)" in out

        assert main(["audit", str(path), "--interval", "2",
                     "--qos", "500"]) == 0
        out = capsys.readouterr().out
        assert "unpredicted QoS violation" in out

        assert main(["audit", str(path), "--interval", "99"]) == 1
        assert "log covers 0..2" in capsys.readouterr().out

    def test_audit_empty_log(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["audit", str(path)]) == 1
        assert "empty audit log" in capsys.readouterr().out

    def test_audit_table_handles_mixed_records(self, tmp_path, capsys):
        from repro.obs import AuditLog, AuditRecord, ModelEventRecord
        from repro.obs.audit import EVENT_PROMOTED

        log = AuditLog()
        log.append(AuditRecord(
            interval=0, time=0.0, measured_p99_ms=120.0, rps=800.0,
            total_cpu=12.0, n_candidates=9, chosen_kind="hold",
            chosen_total_cpu=12.0,
        ))
        log.append(ModelEventRecord(
            interval=0, time=0.0, event=EVENT_PROMOTED, version=2
        ))
        path = tmp_path / "mixed.jsonl"
        log.write_jsonl(path)
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "* model v2 promoted" in out
        assert "1 decisions (0 on safety/fallback paths, " \
               "1 model/shadow markers)" in out


class TestContinuousExecution:
    """`run --continuous` and `retrain` with a stub model (no training)."""

    @pytest.fixture
    def stub_trainer(self, monkeypatch):
        import repro.harness.pipeline as pipeline
        from tests.core.test_continuous import TunableStub

        class StubModel(TunableStub):
            def save(self, path):
                from pathlib import Path

                Path(path).write_bytes(b"stub-envelope")

        monkeypatch.setattr(
            pipeline, "get_trained_predictor", lambda *a, **kw: StubModel()
        )

    def test_run_continuous_requires_sinan(self, capsys):
        code = main([
            "run", "--manager", "static", "--continuous", "--duration", "25",
        ])
        assert code == 2
        assert "requires --manager sinan" in capsys.readouterr().err

    def test_run_continuous_episode(self, stub_trainer, capsys):
        code = main([
            "run", "--manager", "sinan", "--app", "social_network",
            "--continuous", "--users", "20", "--duration", "25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "continuous:" in out
        assert "final state" in out

    def test_retrain_drift_scenario(self, stub_trainer, tmp_path, capsys):
        audit = tmp_path / "audit.jsonl"
        registry = tmp_path / "models"
        code = main([
            "retrain", "--app", "social_network", "--budget", "small",
            "--users", "100", "--duration", "50",
            "--drift-start", "10", "--drift-ramp", "5",
            "--drift-capacity", "0.5",
            "--registry", str(registry), "--audit-out", str(audit),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "drift signals:" in out
        assert "post-window" in out
        assert "model registry" in out
        assert audit.exists()
        assert (registry / "manifest.json").exists()
