"""Deployment-role (Figure 8 component split) tests."""

import numpy as np
import pytest

from repro.core.deployment import (
    CentralScheduler,
    NodeAgent,
    NodePlacement,
    PredictionService,
)
from repro.core.manager import StaticManager
from tests.conftest import make_tiny_cluster
from tests.sim.test_telemetry import make_stats


class TestNodePlacement:
    def test_round_robin(self):
        placement = NodePlacement.round_robin(5, 2)
        assert placement.node_of_tier == (0, 1, 0, 1, 0)
        assert placement.n_nodes == 2
        assert placement.tiers_on(0) == [0, 2, 4]

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            NodePlacement.round_robin(3, 0)


class TestNodeAgent:
    def test_report_slices_node_tiers(self):
        agent = NodeAgent(1, [0, 2])
        stats = make_stats(n=3)
        stats.cpu_util[:] = [0.1, 0.2, 0.3]
        report = agent.report(stats)
        assert report["node"] == 1
        np.testing.assert_allclose(report["cpu_util"], [0.1, 0.3])

    def test_enforce_validates_shape(self):
        agent = NodeAgent(0, [0, 1])
        with pytest.raises(ValueError):
            agent.enforce(np.ones(3))
        agent.enforce(np.array([1.0, 2.0]))
        np.testing.assert_allclose(agent.pending_limits, [1.0, 2.0])


class TestPredictionService:
    def test_counts_queries_and_delegates(self):
        class FakePredictor:
            def predict_candidates(self, log, candidates):
                return np.ones((len(candidates), 5)), np.zeros(len(candidates))

        service = PredictionService(FakePredictor())
        lat, prob = service.score(None, np.ones((3, 4)))
        assert lat.shape == (3, 5)
        assert service.queries == 1


class TestCentralScheduler:
    def test_runs_episode_through_agents(self):
        cluster = make_tiny_cluster(users=60, seed=1)
        manager = StaticManager(np.full(cluster.n_tiers, 2.0))
        scheduler = CentralScheduler(manager, cluster, n_nodes=2)
        log = scheduler.run(5)
        assert len(log) == 5
        assert len(scheduler.reports) == 5
        assert len(scheduler.reports[0]) == 2  # one report per node
        # Agents staged the manager's slices.
        for agent in scheduler.agents:
            np.testing.assert_allclose(agent.pending_limits, 2.0)

    def test_all_tiers_covered_once(self):
        cluster = make_tiny_cluster()
        scheduler = CentralScheduler(
            StaticManager(np.ones(cluster.n_tiers)), cluster, n_nodes=3
        )
        covered = sorted(
            t for agent in scheduler.agents for t in agent.tier_indices
        )
        assert covered == list(range(cluster.n_tiers))
