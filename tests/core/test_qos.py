"""QoS target and violation-label tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.qos import QoSTarget
from tests.sim.test_telemetry import make_stats


class TestQoSTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            QoSTarget(latency_ms=0.0)
        with pytest.raises(ValueError):
            QoSTarget(latency_ms=100.0, percentile=42)

    def test_latency_of_uses_percentile(self):
        qos99 = QoSTarget(latency_ms=100.0, percentile=99)
        qos95 = QoSTarget(latency_ms=100.0, percentile=95)
        stats = make_stats(p99=200.0)
        assert qos99.latency_of(stats) == pytest.approx(200.0)
        assert qos95.latency_of(stats) == pytest.approx(160.0)

    def test_violated(self):
        qos = QoSTarget(latency_ms=150.0)
        assert qos.violated(make_stats(p99=200.0))
        assert not qos.violated(make_stats(p99=100.0))


class TestViolationLabels:
    def test_horizon_lookahead(self):
        qos = QoSTarget(latency_ms=100.0)
        series = np.array([50, 50, 150, 50, 50, 50.0])
        labels = qos.violation_labels(series, horizon=2)
        # label[i] == 1 iff a violation occurs in [i, i+1]
        np.testing.assert_allclose(labels, [0, 1, 1, 0, 0, 0])

    def test_horizon_one_is_pointwise(self):
        qos = QoSTarget(latency_ms=100.0)
        series = np.array([50, 150, 50.0])
        np.testing.assert_allclose(qos.violation_labels(series, 1), [0, 1, 0])

    def test_tail_uses_remaining_intervals(self):
        qos = QoSTarget(latency_ms=100.0)
        series = np.array([50.0, 50.0, 150.0])
        labels = qos.violation_labels(series, horizon=5)
        np.testing.assert_allclose(labels, [1, 1, 1])

    def test_returns_integer_array(self):
        qos = QoSTarget(latency_ms=100.0)
        labels = qos.violation_labels(np.array([50.0, 150.0]), horizon=2)
        assert labels.dtype == np.int64

    def test_empty_series(self):
        qos = QoSTarget(latency_ms=100.0)
        labels = qos.violation_labels(np.array([]), horizon=3)
        assert labels.shape == (0,)
        assert labels.dtype == np.int64

    def test_matches_reference_loop(self):
        """The vectorized sliding-window max agrees with the naive loop
        on a long random series."""
        qos = QoSTarget(latency_ms=250.0)
        rng = np.random.default_rng(0)
        series = rng.uniform(0.0, 500.0, size=500)
        for horizon in (1, 3, 5, 17):
            labels = qos.violation_labels(series, horizon)
            reference = np.array([
                int(np.any(series[i:i + horizon] > 250.0))
                for i in range(len(series))
            ])
            np.testing.assert_array_equal(labels, reference)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            QoSTarget(latency_ms=100.0).violation_labels(np.zeros(3), 0)

    @given(
        st.lists(st.floats(min_value=0, max_value=500), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_label_iff_future_violation(self, series, horizon):
        qos = QoSTarget(latency_ms=250.0)
        series = np.array(series)
        labels = qos.violation_labels(series, horizon)
        for i in range(len(series)):
            window = series[i : i + horizon]
            assert labels[i] == float(np.any(window > 250.0))
