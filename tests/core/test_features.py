"""Feature encoding and dataset-building tests."""

import numpy as np
import pytest

from repro.core.features import WindowEncoder, build_dataset, sanitize_window
from repro.core.qos import QoSTarget
from tests.conftest import make_tiny_cluster
from tests.sim.test_telemetry import make_stats


@pytest.fixture
def recorded_cluster():
    cluster = make_tiny_cluster(users=80, seed=3)
    rng = np.random.default_rng(0)
    for _ in range(20):
        alloc = cluster.current_alloc + rng.uniform(-0.3, 0.3, cluster.n_tiers)
        cluster.step(cluster.clip_alloc(alloc))
    return cluster


class TestSanitizeWindow:
    def test_clean_window_returned_as_is(self):
        window = [make_stats(time=float(i)) for i in range(3)]
        assert sanitize_window(window) is window

    def test_nan_carried_forward_from_last_finite(self):
        window = [make_stats(time=float(i)) for i in range(3)]
        window[1].cpu_util[:] = np.nan
        cleaned = sanitize_window(window)
        np.testing.assert_allclose(cleaned[1].cpu_util, window[0].cpu_util)
        # Originals are never mutated.
        assert np.isnan(window[1].cpu_util).all()

    def test_elementwise_repair(self):
        """Only the non-finite elements are replaced."""
        window = [make_stats(time=float(i)) for i in range(2)]
        window[1].rss_mb[0] = np.inf
        window[1].rss_mb[2] = 777.0
        cleaned = sanitize_window(window)
        assert cleaned[1].rss_mb[0] == window[0].rss_mb[0]
        assert cleaned[1].rss_mb[2] == 777.0

    def test_zero_fill_when_never_finite(self):
        window = [make_stats(time=float(i)) for i in range(2)]
        for stats in window:
            stats.latency_ms[:] = np.nan
        cleaned = sanitize_window(window)
        for stats in cleaned:
            np.testing.assert_allclose(stats.latency_ms, 0.0)

    def test_repaired_values_propagate(self):
        """A repaired interval becomes the carry-forward source for the
        next corrupted one."""
        window = [make_stats(time=float(i)) for i in range(3)]
        window[0].tx_pps[:] = 42.0
        window[1].tx_pps[:] = np.nan
        window[2].tx_pps[:] = np.nan
        cleaned = sanitize_window(window)
        np.testing.assert_allclose(cleaned[2].tx_pps, 42.0)

    def test_encoder_output_finite_under_corruption(self):
        window = [make_stats(time=float(i)) for i in range(5)]
        window[2].cpu_util[:] = np.nan
        window[4].latency_ms[:] = np.nan
        enc = WindowEncoder.__new__(WindowEncoder)
        # Build a minimal encoder for the 3-tier make_stats shape.
        from repro.sim.graph import AppGraph, RequestType
        from repro.sim.tier import TierKind, TierSpec
        tiers = [TierSpec(f"t{i}", kind=TierKind.LOGIC) for i in range(3)]
        graph = AppGraph(
            "x", tiers, [("t0", "t1"), ("t1", "t2")],
            [RequestType("r", stages=(("t0",), ("t1",), ("t2",)))],
        )
        enc = WindowEncoder(graph, n_timesteps=5)
        x_rh, x_lh, _ = enc.encode_window(window, np.ones(3))
        assert np.isfinite(x_rh).all()
        assert np.isfinite(x_lh).all()


class TestWindowEncoder:
    def test_encode_shapes(self, recorded_cluster):
        graph = recorded_cluster.graph
        enc = WindowEncoder(graph, n_timesteps=5)
        cand = np.ones(graph.n_tiers)
        x_rh, x_lh, x_rc = enc.encode_log(recorded_cluster.telemetry, cand)
        assert x_rh.shape == (6, graph.n_tiers, 5)
        assert x_lh.shape == (5, 5)
        assert x_rc.shape == (graph.n_tiers,)

    def test_window_length_enforced(self, recorded_cluster):
        enc = WindowEncoder(recorded_cluster.graph, n_timesteps=5)
        window = [recorded_cluster.telemetry[i] for i in range(3)]
        with pytest.raises(ValueError, match="window"):
            enc.encode_window(window, np.ones(recorded_cluster.n_tiers))

    def test_candidate_shape_enforced(self, recorded_cluster):
        enc = WindowEncoder(recorded_cluster.graph, n_timesteps=5)
        with pytest.raises(ValueError, match="candidate_alloc"):
            enc.encode_log(recorded_cluster.telemetry, np.ones(2))

    def test_encode_candidates_broadcasts_history(self, recorded_cluster):
        graph = recorded_cluster.graph
        enc = WindowEncoder(graph, n_timesteps=4)
        cands = np.ones((7, graph.n_tiers))
        x_rh, x_lh, x_rc = enc.encode_candidates(recorded_cluster.telemetry, cands)
        assert x_rh.shape == (7, 6, graph.n_tiers, 4)
        assert x_lh.shape == (7, 4, 5)
        np.testing.assert_allclose(x_rh[0], x_rh[6])
        np.testing.assert_allclose(x_rc, cands)

    def test_timestamp_ordering_latest_last(self, recorded_cluster):
        graph = recorded_cluster.graph
        enc = WindowEncoder(graph, n_timesteps=3)
        log = recorded_cluster.telemetry
        x_rh, x_lh, _ = enc.encode_log(log, np.ones(graph.n_tiers))
        np.testing.assert_allclose(x_lh[-1], log.latest.latency_ms)
        np.testing.assert_allclose(x_rh[1, :, -1], log.latest.cpu_alloc)

    def test_rejects_zero_timesteps(self, recorded_cluster):
        with pytest.raises(ValueError):
            WindowEncoder(recorded_cluster.graph, n_timesteps=0)


class TestBuildDataset:
    def test_alignment_with_next_interval(self, recorded_cluster):
        graph = recorded_cluster.graph
        qos = QoSTarget(200.0)
        ds = build_dataset(recorded_cluster.telemetry, graph, qos, n_timesteps=5, horizon=3)
        log = recorded_cluster.telemetry
        # sample i corresponds to window ending at interval i+4;
        # its candidate allocation is what interval i+5 applied.
        np.testing.assert_allclose(ds.X_RC[0], log[5].cpu_alloc)
        np.testing.assert_allclose(ds.y_lat[0], log[5].latency_ms)
        np.testing.assert_allclose(ds.X_RH[0][1, :, -1], log[4].cpu_alloc)

    def test_sample_count(self, recorded_cluster):
        ds = build_dataset(
            recorded_cluster.telemetry,
            recorded_cluster.graph,
            QoSTarget(200.0),
            n_timesteps=5,
        )
        assert len(ds) == len(recorded_cluster.telemetry) - 5

    def test_violation_labels_respect_horizon(self, recorded_cluster):
        graph = recorded_cluster.graph
        qos = QoSTarget(1.0)  # everything violates
        ds = build_dataset(recorded_cluster.telemetry, graph, qos, horizon=3)
        assert ds.violation_fraction() == 1.0
        qos_loose = QoSTarget(1e9)
        ds2 = build_dataset(recorded_cluster.telemetry, graph, qos_loose, horizon=3)
        assert ds2.violation_fraction() == 0.0

    def test_too_short_episode_rejected(self):
        cluster = make_tiny_cluster(users=10, seed=0)
        cluster.run(3)
        with pytest.raises(ValueError, match="too short"):
            build_dataset(cluster.telemetry, cluster.graph, QoSTarget(200.0), n_timesteps=5)

    def test_vectorized_matches_per_window_encoding(self, recorded_cluster):
        """The sliding-window fast path == sample-by-sample encoding."""
        log = recorded_cluster.telemetry
        graph = recorded_cluster.graph
        ds = build_dataset(log, graph, QoSTarget(200.0), n_timesteps=5, horizon=3)
        encoder = WindowEncoder(graph, 5)
        for i in (4, 9, len(log) - 2):
            window = [log[j] for j in range(i - 4, i + 1)]
            x_rh, x_lh, x_rc = encoder.encode_window(window, log[i + 1].cpu_alloc)
            j = i - 4
            assert np.array_equal(ds.X_RH[j], x_rh)
            assert np.array_equal(ds.X_LH[j], x_lh)
            assert np.array_equal(ds.X_RC[j], x_rc)

    def test_corrupted_log_falls_back_to_window_repair(self, recorded_cluster):
        """Non-finite telemetry routes through the per-window loop and
        still yields finite, correctly shaped features."""
        log = recorded_cluster.telemetry
        log[6].cpu_util[:] = np.nan
        log[7].latency_ms[0] = np.inf
        ds = build_dataset(
            log, recorded_cluster.graph, QoSTarget(200.0), n_timesteps=5
        )
        assert len(ds) == len(log) - 5
        assert np.isfinite(ds.X_RH).all()
        assert np.isfinite(ds.X_LH).all()

    def test_meta_propagated(self, recorded_cluster):
        ds = build_dataset(
            recorded_cluster.telemetry,
            recorded_cluster.graph,
            QoSTarget(200.0),
            meta={"policy": "test"},
        )
        assert ds.meta["policy"] == "test"
        assert ds.meta["app"] == "tiny"
        assert ds.meta["qos_ms"] == 200.0
