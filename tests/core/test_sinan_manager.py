"""SinanManager wrapper tests (delegation, reset, introspection)."""

import numpy as np

from repro.core.qos import QoSTarget
from repro.core.sinan import SinanManager
from repro.core.actions import ActionSpace
from tests.conftest import make_tiny_graph
from tests.core.test_scheduler import StubPredictor, make_log

QOS = QoSTarget(200.0)


def make_manager(predictor=None):
    graph = make_tiny_graph()
    predictor = predictor or StubPredictor()
    predictor.graph = graph
    return SinanManager(
        predictor, QOS, graph,
        action_space=ActionSpace(graph.min_alloc(), graph.max_alloc()),
    )


class TestSinanManager:
    def test_name(self):
        assert make_manager().name == "Sinan"

    def test_decide_delegates_to_scheduler(self):
        manager = make_manager()
        alloc = manager.decide(make_log())
        assert alloc is not None
        assert alloc.shape == (4,)

    def test_reset_clears_scheduler_state(self):
        manager = make_manager()
        manager.decide(make_log(p99=100.0))
        manager.decide(make_log(p99=400.0))  # misprediction
        assert manager.mispredictions == 1
        manager.reset()
        assert manager.mispredictions == 0
        assert manager.prediction_trace == []

    def test_trusted_property(self):
        manager = make_manager()
        assert manager.trusted

    def test_default_action_space_from_graph(self):
        graph = make_tiny_graph()
        predictor = StubPredictor()
        predictor.graph = graph
        manager = SinanManager(predictor, QOS, graph)
        np.testing.assert_allclose(
            manager.scheduler.action_space.max_alloc, graph.max_alloc()
        )

    def test_prediction_trace_exposed(self):
        manager = make_manager()
        manager.decide(make_log(p99=120.0))
        assert len(manager.prediction_trace) == 1
