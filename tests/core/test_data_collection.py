"""Data-collection policy tests (paper Section 4.2)."""

import numpy as np
import pytest

from repro.baselines.autoscale import AutoScale
from repro.core.data_collection import (
    AutoscaleCollectPolicy,
    BanditExplorer,
    BanditPolicyFactory,
    CollectionConfig,
    DataCollector,
    RandomCollectPolicy,
)
from repro.core.qos import QoSTarget
from tests.conftest import make_tiny_cluster, make_tiny_graph


@pytest.fixture
def config():
    return CollectionConfig(qos=QoSTarget(200.0))


class TestBanditExplorer:
    def test_decisions_within_bounds(self, config):
        cluster = make_tiny_cluster(users=100, seed=0)
        explorer = BanditExplorer(config, seed=0)
        for _ in range(15):
            alloc = explorer.decide(cluster)
            assert np.all(alloc >= cluster.min_alloc - 1e-9)
            assert np.all(alloc <= cluster.max_alloc + 1e-9)
            stats = cluster.step(alloc)
            explorer.observe(config.qos.latency_of(stats) <= 200.0)

    def test_visits_multiple_arms(self, config):
        cluster = make_tiny_cluster(users=100, seed=1)
        explorer = BanditExplorer(config, seed=1)
        for _ in range(25):
            alloc = explorer.decide(cluster)
            stats = cluster.step(alloc)
            explorer.observe(config.qos.latency_of(stats) <= 200.0)
        assert explorer.n_arms_visited > 10

    def test_info_gain_decreases_with_samples(self, config):
        explorer = BanditExplorer(config, seed=0)
        key = ((0, 0, 0), 0, 5)
        fresh_gain = explorer._info_gain(key)
        from repro.core.data_collection import _ArmStats

        explorer._stats[key] = _ArmStats(meets=10, total=20)
        seen_gain = explorer._info_gain(key)
        assert fresh_gain > seen_gain > 0

    def test_deep_overload_jumps_to_max(self, config):
        cluster = make_tiny_cluster(users=400, seed=2)
        cluster.current_alloc = cluster.clip_alloc(
            np.full(cluster.n_tiers, 0.2)
        )
        for _ in range(6):
            cluster.step()
        explorer = BanditExplorer(config, seed=0)
        alloc = explorer.decide(cluster)
        np.testing.assert_allclose(alloc, cluster.max_alloc)

    def test_no_reclamation_while_violating(self, config):
        """In the violating band, no tier goes below its current alloc."""
        cluster = make_tiny_cluster(users=200, seed=3)
        cluster.current_alloc = cluster.clip_alloc(np.full(cluster.n_tiers, 0.6))
        # run until mild violation (within [QoS, QoS*(1+alpha)])
        explorer = BanditExplorer(config, seed=0)
        for _ in range(20):
            stats = cluster.step()
            ratio = config.qos.latency_of(stats) / 200.0
            if 1.0 < ratio <= 1.2:
                before = cluster.current_alloc.copy()
                alloc = explorer.decide(cluster)
                assert np.all(alloc >= before - 1e-9)
                break


class TestBanditNaNLatency:
    def test_nan_latency_blocks_reclamation(self, config):
        """A non-finite measured latency (idle interval, corrupted
        telemetry) must not read as "comfortably meeting QoS": no tier
        may be reclaimed below its current allocation."""
        cluster = make_tiny_cluster(users=100, seed=4)
        for _ in range(3):
            cluster.step()
        cluster.telemetry.latest.latency_ms[:] = np.nan
        explorer = BanditExplorer(config, seed=0)
        before = cluster.current_alloc.copy()
        alloc = explorer.decide(cluster)
        assert np.all(alloc >= before - 1e-9)

    def test_nan_latency_skips_arm_updates(self, config):
        """The QoS-met outcome of a blind step is meaningless (NaN <= x
        is False); the Bernoulli arm statistics must not absorb it."""
        cluster = make_tiny_cluster(users=100, seed=4)
        for _ in range(3):
            cluster.step()
        cluster.telemetry.latest.latency_ms[:] = np.nan
        explorer = BanditExplorer(config, seed=0)
        explorer.decide(cluster)
        assert explorer._pending == []
        explorer.observe(False)  # the inconsistent "not met" outcome
        assert explorer.n_arms_visited == 0

    def test_finite_latency_still_updates_arms(self, config):
        cluster = make_tiny_cluster(users=100, seed=4)
        for _ in range(3):
            cluster.step()
        explorer = BanditExplorer(config, seed=0)
        explorer.decide(cluster)
        assert len(explorer._pending) == cluster.n_tiers
        explorer.observe(True)
        assert explorer.n_arms_visited > 0


class TestOtherPolicies:
    def test_random_policy_moves_within_bounds(self):
        cluster = make_tiny_cluster(users=50, seed=0)
        cluster.step()
        policy = RandomCollectPolicy(seed=0)
        seen = set()
        for _ in range(10):
            alloc = policy.decide(cluster)
            assert np.all(alloc >= cluster.min_alloc - 1e-9)
            assert np.all(alloc <= cluster.max_alloc + 1e-9)
            seen.add(round(float(alloc.sum()), 3))
            cluster.step(alloc)
        assert len(seen) > 3  # it actually wanders

    def test_autoscale_policy_delegates(self):
        cluster = make_tiny_cluster(users=50, seed=0)
        cluster.step()
        manager = AutoScale.opt(cluster.min_alloc, cluster.max_alloc, cooldown=1)
        policy = AutoscaleCollectPolicy(manager)
        alloc = policy.decide(cluster)
        expected = manager.decide(cluster.telemetry)
        # Same rules re-applied a second time may differ because of the
        # manager's cooldown state, so compare against a fresh manager.
        fresh = AutoScale.opt(cluster.min_alloc, cluster.max_alloc, cooldown=1)
        np.testing.assert_allclose(alloc, fresh.decide(cluster.telemetry))

    def test_policies_observe_is_safe(self):
        RandomCollectPolicy().observe(True)
        AutoscaleCollectPolicy(None).observe(False)


class TestDataCollector:
    def test_collect_produces_aligned_dataset(self, config):
        collector = DataCollector(
            lambda users, seed: make_tiny_cluster(users, seed), config
        )
        result = collector.collect(
            BanditExplorer(config, seed=0), loads=[50, 150], seconds_per_load=20
        )
        ds = result.dataset
        # 20 intervals per load, minus window (5) and lookahead (1).
        assert len(ds) == 2 * (20 - config.n_timesteps - 1 + 1)
        assert ds.X_RH.shape[1:] == (6, 4, config.n_timesteps)
        assert len(result.logs) == 2

    def test_each_load_fresh_episode(self, config):
        collector = DataCollector(
            lambda users, seed: make_tiny_cluster(users, seed), config
        )
        result = collector.collect(
            RandomCollectPolicy(seed=1), loads=[30, 60], seconds_per_load=10
        )
        for log in result.logs:
            assert len(log) == 10
            assert log[0].time == pytest.approx(1.0)

    def test_exactly_one_policy_source(self, config):
        collector = DataCollector(make_tiny_cluster, config)
        factory = BanditPolicyFactory(config)
        with pytest.raises(ValueError, match="exactly one"):
            collector.collect(loads=[30], seconds_per_load=10)
        with pytest.raises(ValueError, match="exactly one"):
            collector.collect(
                BanditExplorer(config), loads=[30], seconds_per_load=10,
                policy_factory=factory,
            )

    def test_shared_policy_rejects_parallel_jobs(self, config):
        collector = DataCollector(make_tiny_cluster, config)
        with pytest.raises(ValueError, match="policy_factory"):
            collector.collect(
                BanditExplorer(config), loads=[30, 60], seconds_per_load=10,
                jobs=2,
            )


class TestParallelCollect:
    """Per-episode policy factories: serial and fanned-out runs agree."""

    def _collect(self, config, jobs):
        # ``make_tiny_cluster`` and ``BanditPolicyFactory`` are both
        # picklable, which is what worker processes require.
        collector = DataCollector(make_tiny_cluster, config)
        return collector.collect(
            loads=[40, 80, 120], seconds_per_load=15, seed=7,
            policy_factory=BanditPolicyFactory(config), jobs=jobs,
        )

    def test_parallel_bit_identical_to_serial(self, config):
        serial = self._collect(config, jobs=None)
        fanned = self._collect(config, jobs=2)
        for name in ("X_RH", "X_LH", "X_RC", "y_lat", "y_viol"):
            np.testing.assert_array_equal(
                getattr(serial.dataset, name), getattr(fanned.dataset, name)
            )
        assert len(fanned.logs) == 3

    def test_logs_in_load_order(self, config):
        result = self._collect(config, jobs=2)
        rps = [log.latest.rps for log in result.logs]
        # Higher offered load -> higher steady-state RPS, so load order
        # is observable in the returned logs.
        assert rps == sorted(rps)
