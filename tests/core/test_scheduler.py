"""Online-scheduler logic tests against a controllable stub predictor."""

import numpy as np
import pytest

from repro.core.actions import ActionKind, ActionSpace
from repro.core.qos import QoSTarget
from repro.core.scheduler import OnlineScheduler, SchedulerConfig
from repro.sim.telemetry import TelemetryLog
from tests.sim.test_telemetry import make_stats

N = 4
QOS = QoSTarget(200.0)


class StubPredictor:
    """Predictor with scriptable outputs.

    ``latency_fn(alloc) -> ms`` and ``prob_fn(alloc) -> p`` control the
    scores each candidate receives.
    """

    def __init__(self, latency_fn=None, prob_fn=None, rmse=20.0):
        self.latency_fn = latency_fn or (lambda alloc: 100.0)
        self.prob_fn = prob_fn or (lambda alloc: 0.0)
        self.report = object()
        self._rmse = rmse

    @property
    def rmse_val(self):
        return self._rmse

    @property
    def thresholds(self):
        return 0.02, 0.08

    def predict_candidates(self, log, candidates):
        lat = np.array([[self.latency_fn(c)] * 5 for c in candidates])
        prob = np.array([self.prob_fn(c) for c in candidates])
        return lat, prob


def make_scheduler(predictor, **config):
    space = ActionSpace(np.full(N, 0.2), np.full(N, 8.0), util_cap=0.6)
    return OnlineScheduler(predictor, space, QOS, SchedulerConfig(**config))


def make_log(p99=100.0, alloc=2.0, n_intervals=6, util=0.3):
    log = TelemetryLog()
    for i in range(n_intervals):
        stats = make_stats(time=float(i), p99=p99, alloc=alloc, n=N)
        stats.cpu_util[:] = util
        log.append(stats)
    return log


class TestSelection:
    def test_empty_log_holds(self):
        sched = make_scheduler(StubPredictor())
        assert sched.decide(TelemetryLog()) is None

    def test_safe_state_scales_down(self):
        """All candidates safe -> pick the cheapest (a scale-down)."""
        sched = make_scheduler(StubPredictor())
        alloc = sched.decide(make_log())
        assert alloc.sum() < 4 * 2.0

    def test_risky_downs_keep_hold(self):
        """Scale-downs above p_down are rejected; hold is kept."""
        current_total = 4 * 2.0

        def prob_fn(alloc):
            return 0.0 if alloc.sum() >= current_total else 0.5

        sched = make_scheduler(StubPredictor(prob_fn=prob_fn))
        alloc = sched.decide(make_log())
        assert alloc.sum() == pytest.approx(current_total)

    def test_risky_hold_triggers_scale_up(self):
        """Hold above p_up -> cheapest acceptable scale-up wins."""

        def prob_fn(alloc):
            return 0.02 if alloc.sum() > 8.5 else 0.5

        sched = make_scheduler(StubPredictor(prob_fn=prob_fn))
        alloc = sched.decide(make_log())
        assert alloc.sum() > 8.0

    def test_all_risky_falls_back_to_max(self):
        sched = make_scheduler(StubPredictor(prob_fn=lambda a: 0.99))
        alloc = sched.decide(make_log())
        np.testing.assert_allclose(alloc, 8.0)

    def test_latency_margin_filters_candidates(self):
        """Predicted latency above QoS - RMSE_val excludes an action."""

        def latency_fn(alloc):
            # downs look slow, everything else fast
            return 300.0 if alloc.sum() < 8.0 else 50.0

        sched = make_scheduler(StubPredictor(latency_fn=latency_fn, rmse=30.0))
        alloc = sched.decide(make_log())
        assert alloc.sum() == pytest.approx(8.0)  # hold, no downs allowed


class TestSafetyMechanism:
    def test_unpredicted_violation_boosts_all(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))  # predicted safe
        boosted = sched.decide(make_log(p99=400.0))  # violation arrives
        assert sched.mispredictions == 1
        assert np.all(boosted >= 2.0 * 1.3)

    def test_violation_blocks_reclamation(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))  # misprediction + boost
        # Next interval still violating: not another misprediction,
        # but no scale-down either.
        alloc = sched.decide(make_log(p99=400.0, alloc=3.0))
        assert sched.mispredictions == 1
        assert alloc.sum() >= 4 * 3.0 - 1e-9

    def test_cooldown_after_recovery(self):
        sched = make_scheduler(StubPredictor(), down_cooldown=3)
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))  # boost, cooldown set
        alloc = sched.decide(make_log(p99=100.0, alloc=3.0))
        assert alloc.sum() >= 4 * 3.0 - 1e-9  # still cooling down

    def test_trust_lost_after_threshold(self):
        sched = make_scheduler(StubPredictor(), trust_threshold=2)
        for _ in range(4):
            sched.decide(make_log(p99=100.0))
            sched.decide(make_log(p99=400.0))
        assert not sched.trusted

    def test_reclaim_latency_guard(self):
        """No reclamation while measured latency exceeds the guard
        fraction of QoS, even if the model approves."""
        sched = make_scheduler(StubPredictor(), reclaim_latency_frac=0.8)
        sched._last_predicted_safe = False  # avoid misprediction path
        alloc = sched.decide(make_log(p99=170.0))  # 170 > 0.8 * 200
        assert alloc.sum() >= 4 * 2.0 - 1e-9


class TestBookkeeping:
    def test_prediction_trace_records(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=120.0))
        assert len(sched.prediction_trace) == 1
        entry = sched.prediction_trace[0]
        assert entry["measured_ms"] == pytest.approx(120.0)
        assert 0.0 <= entry["p_violation"] <= 1.0

    def test_victims_tracked(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log())  # scale-down happens
        assert np.any(sched._victim_age == 0)

    def test_reset_clears_state(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))
        sched.reset()
        assert sched.mispredictions == 0
        assert sched.prediction_trace == []
        assert sched.decisions == 0

    def test_calibrated_thresholds_used_when_config_none(self):
        sched = make_scheduler(StubPredictor(), p_down=None, p_up=None)
        assert sched.p_down == pytest.approx(0.02)
        assert sched.p_up == pytest.approx(0.08)

    def test_config_overrides_thresholds(self):
        sched = make_scheduler(StubPredictor(), p_down=0.5, p_up=0.9)
        assert sched.p_down == 0.5
        assert sched.p_up == 0.9
