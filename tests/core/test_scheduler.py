"""Online-scheduler logic tests against a controllable stub predictor."""

import numpy as np
import pytest

from repro.core.actions import ActionKind, ActionSpace
from repro.core.qos import QoSTarget
from repro.core.scheduler import OnlineScheduler, SchedulerConfig
from repro.sim.telemetry import TelemetryLog
from tests.sim.test_telemetry import make_stats

N = 4
QOS = QoSTarget(200.0)


class StubPredictor:
    """Predictor with scriptable outputs.

    ``latency_fn(alloc) -> ms`` and ``prob_fn(alloc) -> p`` control the
    scores each candidate receives.
    """

    def __init__(self, latency_fn=None, prob_fn=None, rmse=20.0):
        self.latency_fn = latency_fn or (lambda alloc: 100.0)
        self.prob_fn = prob_fn or (lambda alloc: 0.0)
        self.report = object()
        self._rmse = rmse

    @property
    def rmse_val(self):
        return self._rmse

    @property
    def thresholds(self):
        return 0.02, 0.08

    def predict_candidates(self, log, candidates):
        lat = np.array([[self.latency_fn(c)] * 5 for c in candidates])
        prob = np.array([self.prob_fn(c) for c in candidates])
        return lat, prob


def make_scheduler(predictor, **config):
    space = ActionSpace(np.full(N, 0.2), np.full(N, 8.0), util_cap=0.6)
    return OnlineScheduler(predictor, space, QOS, SchedulerConfig(**config))


def make_log(p99=100.0, alloc=2.0, n_intervals=6, util=0.3):
    log = TelemetryLog()
    for i in range(n_intervals):
        stats = make_stats(time=float(i), p99=p99, alloc=alloc, n=N)
        stats.cpu_util[:] = util
        log.append(stats)
    return log


class TestSelection:
    def test_empty_log_holds(self):
        sched = make_scheduler(StubPredictor())
        assert sched.decide(TelemetryLog()) is None

    def test_safe_state_scales_down(self):
        """All candidates safe -> pick the cheapest (a scale-down)."""
        sched = make_scheduler(StubPredictor())
        alloc = sched.decide(make_log())
        assert alloc.sum() < 4 * 2.0

    def test_risky_downs_keep_hold(self):
        """Scale-downs above p_down are rejected; hold is kept."""
        current_total = 4 * 2.0

        def prob_fn(alloc):
            return 0.0 if alloc.sum() >= current_total else 0.5

        sched = make_scheduler(StubPredictor(prob_fn=prob_fn))
        alloc = sched.decide(make_log())
        assert alloc.sum() == pytest.approx(current_total)

    def test_risky_hold_triggers_scale_up(self):
        """Hold above p_up -> cheapest acceptable scale-up wins."""

        def prob_fn(alloc):
            return 0.02 if alloc.sum() > 8.5 else 0.5

        sched = make_scheduler(StubPredictor(prob_fn=prob_fn))
        alloc = sched.decide(make_log())
        assert alloc.sum() > 8.0

    def test_all_risky_falls_back_to_max(self):
        sched = make_scheduler(StubPredictor(prob_fn=lambda a: 0.99))
        alloc = sched.decide(make_log())
        np.testing.assert_allclose(alloc, 8.0)

    def test_latency_margin_filters_candidates(self):
        """Predicted latency above QoS - RMSE_val excludes an action."""

        def latency_fn(alloc):
            # downs look slow, everything else fast
            return 300.0 if alloc.sum() < 8.0 else 50.0

        sched = make_scheduler(StubPredictor(latency_fn=latency_fn, rmse=30.0))
        alloc = sched.decide(make_log())
        assert alloc.sum() == pytest.approx(8.0)  # hold, no downs allowed


class TestSafetyMechanism:
    def test_unpredicted_violation_boosts_all(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))  # predicted safe
        boosted = sched.decide(make_log(p99=400.0))  # violation arrives
        assert sched.mispredictions == 1
        assert np.all(boosted >= 2.0 * 1.3)

    def test_violation_blocks_reclamation(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))  # misprediction + boost
        # Next interval still violating: not another misprediction,
        # but no scale-down either.
        alloc = sched.decide(make_log(p99=400.0, alloc=3.0))
        assert sched.mispredictions == 1
        assert alloc.sum() >= 4 * 3.0 - 1e-9

    def test_cooldown_after_recovery(self):
        sched = make_scheduler(StubPredictor(), down_cooldown=3)
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))  # boost, cooldown set
        alloc = sched.decide(make_log(p99=100.0, alloc=3.0))
        assert alloc.sum() >= 4 * 3.0 - 1e-9  # still cooling down

    def test_trust_lost_after_threshold(self):
        sched = make_scheduler(StubPredictor(), trust_threshold=2)
        for _ in range(4):
            sched.decide(make_log(p99=100.0))
            sched.decide(make_log(p99=400.0))
        assert not sched.trusted

    def test_reclaim_latency_guard(self):
        """No reclamation while measured latency exceeds the guard
        fraction of QoS, even if the model approves."""
        sched = make_scheduler(StubPredictor(), reclaim_latency_frac=0.8)
        sched._last_predicted_safe = False  # avoid misprediction path
        alloc = sched.decide(make_log(p99=170.0))  # 170 > 0.8 * 200
        assert alloc.sum() >= 4 * 2.0 - 1e-9


class FailingPredictor(StubPredictor):
    """Predictor whose scoring raises after ``good_calls`` successes."""

    def __init__(self, good_calls=0, **kwargs):
        super().__init__(**kwargs)
        self.good_calls = good_calls
        self.calls = 0

    def predict_candidates(self, log, candidates):
        self.calls += 1
        if self.calls > self.good_calls:
            raise RuntimeError("model server down")
        return super().predict_candidates(log, candidates)


def make_nan_log(p99=100.0, alloc=2.0, n_intervals=6, nan_util=False,
                 nan_latency=False, nan_alloc=False):
    log = make_log(p99=p99, alloc=alloc, n_intervals=n_intervals)
    latest = log.latest
    if nan_util:
        latest.cpu_util[:] = np.nan
    if nan_latency:
        latest.latency_ms[:] = np.nan
    if nan_alloc:
        latest.cpu_alloc[0] = np.nan
    return log


class TestGracefulDegradation:
    def test_predictor_exception_falls_back_to_max(self):
        sched = make_scheduler(FailingPredictor())
        alloc = sched.decide(make_log())
        np.testing.assert_allclose(alloc, 8.0)
        assert sched.fallbacks == 1
        assert sched.predictor_failures == 1
        assert sched.prediction_trace[-1]["fallback"] == 1.0

    def test_nonfinite_predictor_output_falls_back(self):
        sched = make_scheduler(StubPredictor(latency_fn=lambda a: np.nan))
        alloc = sched.decide(make_log())
        np.testing.assert_allclose(alloc, 8.0)
        assert sched.predictor_failures == 1

    def test_fallback_blocks_reclamation_for_cooldown(self):
        sched = make_scheduler(FailingPredictor(good_calls=0),
                               down_cooldown=3)
        sched.decide(make_log())  # fails -> max alloc, cooldown set
        sched.predictor.good_calls = 10**9  # healthy again
        alloc = sched.decide(make_log(alloc=8.0))
        assert alloc.sum() >= 4 * 8.0 - 1e-9  # still cooling down

    def test_no_acceptable_action_counts_fallback(self):
        sched = make_scheduler(StubPredictor(prob_fn=lambda a: 0.99))
        sched.decide(make_log())
        assert sched.fallbacks == 1
        assert sched.predictor_failures == 0  # the model answered

    def test_nan_measured_latency_blocks_reclamation(self):
        """An unknown p99 must not be read as 'QoS is fine'."""
        sched = make_scheduler(StubPredictor())
        alloc = sched.decide(make_nan_log(nan_latency=True))
        assert alloc.sum() >= 4 * 2.0 - 1e-9
        assert sched.mispredictions == 0  # NaN is not a violation either

    def test_nan_cpu_util_counts_as_busy(self):
        """A tier whose utilization reads NaN must not be reclaimed."""
        sched = make_scheduler(StubPredictor())
        log = make_log()
        log.latest.cpu_util[0] = np.nan
        alloc = sched.decide(log)
        assert alloc[0] >= 2.0 - 1e-9  # unseen tier untouched

    def test_nan_current_alloc_assumes_ceiling(self):
        sched = make_scheduler(StubPredictor(prob_fn=lambda a: 0.99))
        alloc = sched.decide(make_nan_log(nan_alloc=True))
        assert np.all(np.isfinite(alloc))

    def test_corrupt_interval_never_raises(self):
        """Fully NaN telemetry must degrade, not crash the control loop."""
        sched = make_scheduler(StubPredictor())
        log = make_log()
        for name in ("cpu_util", "rss_mb", "cache_mb", "rx_pps",
                     "tx_pps", "latency_ms"):
            getattr(log.latest, name)[:] = np.nan
        alloc = sched.decide(log)
        assert np.all(np.isfinite(alloc))


class TestSafetyPathEndToEnd:
    def test_violation_storm_exercises_full_safety_path(self):
        """Recovery boost fires, mispredictions accumulate, trust flips,
        and the untrusted scheduler stops reclaiming — in one episode."""
        sched = make_scheduler(StubPredictor(), trust_threshold=3,
                               recovery_boost=1.3)
        boosts = 0
        alloc = 2.0
        for _ in range(8):  # alternating calm / unpredicted violation
            sched.decide(make_log(p99=100.0, alloc=alloc))
            before = sched.mispredictions
            boosted = sched.decide(make_log(p99=400.0, alloc=alloc))
            if sched.mispredictions > before:
                boosts += 1
                # The boost multiplies the current allocation (capped).
                expected = min(alloc * 1.3 + 0.2, 8.0)
                np.testing.assert_allclose(boosted, expected)
        assert sched.mispredictions == boosts == 8
        assert not sched.trusted  # past trust_threshold=3

        # Untrusted: even a calm, model-approved interval cannot reclaim.
        alloc_after = sched.decide(make_log(p99=50.0, alloc=4.0))
        assert alloc_after.sum() >= 4 * 4.0 - 1e-9

        # reset() restores trust and the reclamation path.
        sched.reset()
        assert sched.trusted
        for _ in range(3):  # drain any EWMA/cooldown conservatism
            reclaimed = sched.decide(make_log(p99=50.0, alloc=4.0))
        assert reclaimed.sum() < 4 * 4.0


class TestBookkeeping:
    def test_prediction_trace_records(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=120.0))
        assert len(sched.prediction_trace) == 1
        entry = sched.prediction_trace[0]
        assert entry["measured_ms"] == pytest.approx(120.0)
        assert 0.0 <= entry["p_violation"] <= 1.0

    def test_victims_tracked(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log())  # scale-down happens
        assert np.any(sched._victim_age == 0)

    def test_reset_clears_state(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=100.0))
        sched.decide(make_log(p99=400.0))
        sched.reset()
        assert sched.mispredictions == 0
        assert sched.prediction_trace == []
        assert sched.decisions == 0

    def test_reset_equals_fresh_scheduler(self):
        """After a messy episode (misprediction, predictor failure,
        fallback), reset() must restore *every* piece of per-episode
        state: a reset scheduler replays a decision sequence exactly
        like a fresh one."""
        def boom(_alloc):
            raise RuntimeError("predictor down")

        stub = StubPredictor()
        used = make_scheduler(stub)
        used.decide(make_log(p99=100.0))
        used.decide(make_log(p99=400.0))  # unpredicted violation
        stub.latency_fn = boom
        used.decide(make_log(p99=100.0))  # predictor failure fallback
        stub.latency_fn = lambda alloc: 100.0
        used.decide(make_log(p99=190.0, util=0.9))
        used.reset()

        fresh = make_scheduler(StubPredictor())
        assert used.mispredictions == fresh.mispredictions == 0
        assert used.decisions == fresh.decisions == 0
        assert used.fallbacks == fresh.fallbacks == 0
        assert used.predictor_failures == fresh.predictor_failures == 0
        assert used._last_predicted_safe is fresh._last_predicted_safe is True
        assert used._hold_p_ewma == fresh._hold_p_ewma == 0.0
        assert used._cooldown == fresh._cooldown == 0
        np.testing.assert_array_equal(used._victim_age, fresh._victim_age)

        # Identical replays, decision by decision and state by state.
        for p99, util in [(100.0, 0.3), (150.0, 0.7), (400.0, 0.5),
                          (100.0, 0.3), (100.0, 0.2)]:
            log = make_log(p99=p99, util=util)
            a = used.decide(log)
            b = fresh.decide(log)
            np.testing.assert_array_equal(a, b)
        assert used.prediction_trace == fresh.prediction_trace
        assert used.mispredictions == fresh.mispredictions
        assert used._hold_p_ewma == fresh._hold_p_ewma

    def test_reset_invalidates_encoder_cache(self):
        """reset() must drop the predictor's incremental history cache:
        it is per-episode state living outside the scheduler."""

        class _Encoder:
            def __init__(self):
                self.invalidated = 0

            def invalidate_cache(self):
                self.invalidated += 1

        stub = StubPredictor()
        stub.encoder = _Encoder()
        sched = make_scheduler(stub)  # __init__ calls reset() once
        assert stub.encoder.invalidated == 1
        sched.decide(make_log())
        sched.reset()
        assert stub.encoder.invalidated == 2

    def test_reset_without_encoder_attribute(self):
        """Predictors without an encoder (stubs, baselines) stay fine."""
        sched = make_scheduler(StubPredictor())
        sched.reset()
        assert sched.decisions == 0

    def test_calibrated_thresholds_used_when_config_none(self):
        sched = make_scheduler(StubPredictor(), p_down=None, p_up=None)
        assert sched.p_down == pytest.approx(0.02)
        assert sched.p_up == pytest.approx(0.08)

    def test_config_overrides_thresholds(self):
        sched = make_scheduler(StubPredictor(), p_down=0.5, p_up=0.9)
        assert sched.p_down == 0.5
        assert sched.p_up == 0.9


class CalibratedStub(StubPredictor):
    """Stub whose calibrated thresholds are settable (promotion tests)."""

    def __init__(self, p_down, p_up, **kwargs):
        super().__init__(**kwargs)
        self._thresholds = (p_down, p_up)

    @property
    def thresholds(self):
        return self._thresholds


class TestPromotion:
    def test_refresh_thresholds_rereads_calibration(self):
        sched = make_scheduler(CalibratedStub(0.02, 0.08), p_down=None, p_up=None)
        assert sched.p_up == pytest.approx(0.08)
        sched.predictor = CalibratedStub(0.05, 0.3)
        sched.refresh_thresholds()
        assert sched.p_down == pytest.approx(0.05)
        assert sched.p_up == pytest.approx(0.3)

    def test_refresh_keeps_explicit_config(self):
        sched = make_scheduler(CalibratedStub(0.02, 0.08), p_down=0.01, p_up=0.2)
        sched.predictor = CalibratedStub(0.5, 0.9)
        sched.refresh_thresholds()
        assert sched.p_down == 0.01
        assert sched.p_up == 0.2

    def test_promoted_calibration_reaches_select(self):
        """A promoted model's recalibrated ``p_down`` must change what
        ``_select`` accepts — the __init__-time snapshot regression."""
        prob_fn = lambda alloc: 0.04  # noqa: E731 - every action mildly risky
        sched = make_scheduler(
            CalibratedStub(0.02, 0.08, prob_fn=prob_fn),
            p_down=None, p_up=None,
        )
        log = make_log(p99=100.0, alloc=2.0, util=0.3)
        held = sched.decide(log)
        # p_down=0.02 rejects every scale-down at prob 0.04 -> hold.
        assert held.sum() == pytest.approx(2.0 * N)

        promoted = CalibratedStub(0.06, 0.3, prob_fn=prob_fn)
        sched.adopt_predictor(promoted)
        assert sched.predictor is promoted
        assert sched.p_down == pytest.approx(0.06)
        down = sched.decide(log)
        # The recalibrated p_down=0.06 accepts scale-downs at prob 0.04.
        assert down.sum() < 2.0 * N - 1e-6

    def test_adopt_predictor_resets_safety_state(self):
        sched = make_scheduler(StubPredictor())
        log = make_log(p99=500.0)  # violating, unpredicted -> boost
        sched.decide(log)
        assert sched.mispredictions == 1
        sched.adopt_predictor(StubPredictor())
        assert sched.mispredictions == 0
        assert sched._cooldown == 0
        assert sched.trusted

    def test_adopt_predictor_can_keep_safety_state(self):
        sched = make_scheduler(StubPredictor())
        sched.decide(make_log(p99=500.0))
        sched.adopt_predictor(StubPredictor(), reset_safety=False)
        assert sched.mispredictions == 1
