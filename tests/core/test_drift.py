"""Drift-detector unit tests on synthetic decision streams."""

import math

import pytest

from repro.core.drift import (
    REASON_CALIBRATION,
    REASON_FALLBACK_RATE,
    REASON_MISPREDICTION_RATE,
    DriftConfig,
    DriftDetector,
    scan_audit,
)
from repro.obs.audit import (
    REASON_BOOST,
    REASON_NO_ACCEPTABLE,
    AuditRecord,
)

QOS_MS = 200.0


def feed_healthy(detector, n, p99=120.0):
    """n well-calibrated, violation-free decisions."""
    signals = []
    for _ in range(n):
        detector.observe(measured_ms=p99, predicted_ms=p99)
        sig = detector.check()
        if sig is not None:
            signals.append(sig)
    return signals


class TestNoDrift:
    def test_healthy_stream_never_signals(self):
        detector = DriftDetector(QOS_MS)
        assert feed_healthy(detector, 300) == []
        assert detector.signals == []

    def test_sub_threshold_rates_stay_quiet(self):
        cfg = DriftConfig(window=40, min_decisions=20,
                          misprediction_rate=0.10, fallback_rate=0.30)
        detector = DriftDetector(QOS_MS, cfg)
        # 1-in-20 mispredictions (5%), 1-in-5 fallbacks (20%): both below.
        for i in range(200):
            detector.observe(
                measured_ms=130.0,
                predicted_ms=130.0,
                mispredicted=(i % 20 == 0),
                fallback=(i % 5 == 0),
            )
            assert detector.check() is None

    def test_nan_telemetry_does_not_poison_calibration(self):
        """Idle intervals measure NaN; they must neither count toward
        calibration error nor suppress legitimate samples."""
        detector = DriftDetector(QOS_MS)
        for i in range(120):
            measured = math.nan if i % 3 == 0 else 140.0
            detector.observe(measured_ms=measured, predicted_ms=140.0)
            assert detector.check() is None

    def test_min_decisions_gate(self):
        cfg = DriftConfig(window=40, min_decisions=20, misprediction_rate=0.10)
        detector = DriftDetector(QOS_MS, cfg)
        # Every decision a misprediction, but the window is too short to
        # judge for the first 19 decisions.
        for i in range(19):
            detector.observe(150.0, 150.0, mispredicted=True)
            assert detector.check() is None
        detector.observe(150.0, 150.0, mispredicted=True)
        assert detector.check() is not None


class TestDriftSignals:
    def test_misprediction_burst_signals_with_reason(self):
        detector = DriftDetector(QOS_MS)
        feed_healthy(detector, 100)
        signal = None
        for _ in range(40):
            detector.observe(260.0, 150.0, mispredicted=True)
            signal = detector.check()
            if signal is not None:
                break
        assert signal is not None
        assert signal.reason == REASON_MISPREDICTION_RATE
        assert signal.value > signal.threshold
        assert detector.signals == [signal]

    def test_fallback_storm_signals_with_reason(self):
        cfg = DriftConfig(misprediction_rate=2.0)  # isolate fallback reason
        detector = DriftDetector(QOS_MS, cfg)
        feed_healthy(detector, 100)
        signal = None
        for _ in range(40):
            detector.observe(180.0, math.nan, fallback=True)
            signal = detector.check()
            if signal is not None:
                break
        assert signal is not None
        assert signal.reason == REASON_FALLBACK_RATE

    def test_calibration_drift_signals_with_reason(self):
        """Injected calibration drift: predictions stay at 120ms while
        reality moves to 120 + 0.5*QoS — no violation, no fallback, but
        the regression head is clearly stale."""
        detector = DriftDetector(QOS_MS)
        feed_healthy(detector, 100)
        signal = None
        for _ in range(40):
            detector.observe(measured_ms=220.0, predicted_ms=120.0)
            signal = detector.check()
            if signal is not None:
                break
        assert signal is not None
        assert signal.reason == REASON_CALIBRATION
        # Fires as soon as the windowed mean crosses the threshold; the
        # asymptotic error of the injected drift is 100ms / QoS = 0.5.
        assert signal.threshold < signal.value <= 100.0 / QOS_MS + 1e-9

    def test_cooldown_suppresses_resignal(self):
        cfg = DriftConfig(cooldown=50)
        detector = DriftDetector(QOS_MS, cfg)
        fired_at = []
        for _ in range(200):
            detector.observe(260.0, 150.0, mispredicted=True)
            if detector.check() is not None:
                fired_at.append(detector.decisions_seen)
        assert len(fired_at) >= 2
        for a, b in zip(fired_at, fired_at[1:]):
            assert b - a >= cfg.cooldown

    def test_reset_clears_window_keeps_signals(self):
        detector = DriftDetector(QOS_MS)
        for _ in range(40):
            detector.observe(260.0, 150.0, mispredicted=True)
            detector.check()
        assert len(detector.signals) == 1
        detector.reset()
        assert detector.signals  # history survives episode boundaries
        assert feed_healthy(detector, 100) == []

    def test_signal_describe_mentions_reason(self):
        detector = DriftDetector(QOS_MS)
        for _ in range(40):
            detector.observe(260.0, 150.0, mispredicted=True)
            detector.check()
        text = detector.signals[0].describe()
        assert REASON_MISPREDICTION_RATE in text

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="qos_ms"):
            DriftDetector(0.0)
        with pytest.raises(ValueError, match="window"):
            DriftConfig(window=0)
        with pytest.raises(ValueError, match="min_decisions"):
            DriftConfig(min_decisions=0)


def make_record(i, *, measured=130.0, predicted=130.0, reason=None):
    return AuditRecord(
        interval=i,
        time=float(i + 1),
        measured_p99_ms=measured,
        rps=100.0,
        total_cpu=8.0,
        n_candidates=5,
        chosen_kind="hold",
        chosen_total_cpu=8.0,
        predicted_p99_ms=predicted,
        fallback_reason=reason,
    )


class TestScanAudit:
    def test_clean_stream_no_signal(self):
        records = [make_record(i) for i in range(120)]
        assert scan_audit(records, QOS_MS) == []

    def test_boost_records_count_as_mispredictions(self):
        records = [make_record(i) for i in range(100)]
        records += [
            make_record(100 + i, measured=260.0, predicted=math.nan,
                        reason=REASON_BOOST)
            for i in range(40)
        ]
        signals = scan_audit(records, QOS_MS)
        assert signals
        assert signals[0].reason == REASON_MISPREDICTION_RATE

    def test_no_acceptable_records_count_as_fallbacks(self):
        cfg = DriftConfig(misprediction_rate=2.0, calibration_frac=2.0)
        records = [make_record(i) for i in range(100)]
        records += [
            make_record(100 + i, predicted=math.nan,
                        reason=REASON_NO_ACCEPTABLE)
            for i in range(40)
        ]
        signals = scan_audit(records, QOS_MS, cfg)
        assert signals
        assert signals[0].reason == REASON_FALLBACK_RATE
