"""Vectorized control loop vs the Action-list oracle: bitwise equality.

The matrix candidate path (:meth:`ActionSpace.candidates_fast`) and the
mask-based selection (:meth:`OnlineScheduler._select_fast`) are only
shippable because they change nothing but wall-clock time.  These tests
pin that down at every level: the candidate matrix row-for-row against
the Action list, the selected index against the list-based ``_select``
under synthetic predictions, and full-episode decision traces with
``fast_control`` on vs off — on clean telemetry, under fault profiles,
and on telemetry recorded from a bandit-explorer episode.
"""

import numpy as np
import pytest

from repro.core.actions import ActionSpace, KINDS_BY_CODE
from repro.core.data_collection import BanditExplorer, CollectionConfig
from repro.core.scheduler import OnlineScheduler
from tests.conftest import make_tiny_cluster, make_tiny_graph
from tests.core.test_fast_path import (  # noqa: F401 (fixture re-export)
    QOS,
    make_faulty_cluster,
    trained,
)


def tiny_space() -> ActionSpace:
    graph = make_tiny_graph()
    return ActionSpace(graph.min_alloc(), graph.max_alloc())


def assert_candidates_equal(space, current, cpu_util, victims, allow_down):
    actions = space.candidates(
        current, cpu_util, victims=victims, allow_scale_down=allow_down
    )
    cset = space.candidates_fast(
        current, cpu_util, victims=victims, allow_scale_down=allow_down
    )
    assert len(cset) == len(actions)
    assert np.array_equal(cset.allocs, np.stack([a.alloc for a in actions]))
    assert [KINDS_BY_CODE[c] for c in cset.kinds] == [a.kind for a in actions]
    assert np.array_equal(
        cset.total_cpu, np.array([a.total_cpu for a in actions])
    )
    for i, action in enumerate(actions):
        assert cset.kind_of(i) is action.kind


class TestCandidateMatrixEquivalence:
    """``candidates_fast`` emits exactly the Action-list candidates:
    same rows, same order, same kinds, same total CPU."""

    @pytest.mark.parametrize("allow_down", [True, False])
    def test_synthetic_states(self, rng, allow_down):
        space = tiny_space()
        n = space.n_tiers
        victim_patterns = [
            None,
            np.zeros(n, dtype=bool),
            np.ones(n, dtype=bool),
            np.arange(n) % 2 == 0,
        ]
        for trial in range(10):
            current = np.round(rng.uniform(0.3, 7.5, n), 2)
            cpu_util = rng.uniform(0.0, 1.2, n)
            victims = victim_patterns[trial % len(victim_patterns)]
            assert_candidates_equal(
                space, current, cpu_util, victims, allow_down
            )

    def test_at_allocation_bounds(self):
        """Clipped-away candidates dedupe identically on both paths."""
        space = tiny_space()
        util = np.full(space.n_tiers, 0.4)
        for current in (space.min_alloc.copy(), space.max_alloc.copy()):
            assert_candidates_equal(space, current, util, None, True)

    def _sweep_episode(self, cluster, steps, policy=None):
        """Candidate equality at every interval of a live episode."""
        space = tiny_space()
        qos = QOS
        for _ in range(steps):
            if policy is not None:
                alloc = policy.decide(cluster)
                stats = cluster.step(alloc)
                policy.observe(qos.latency_of(stats) <= qos.latency_ms)
            else:
                cluster.step(cluster.current_alloc)
            latest = cluster.observed.latest
            current = np.asarray(latest.cpu_alloc, dtype=float)
            if not np.all(np.isfinite(current)):
                current = np.where(
                    np.isfinite(current), current, space.max_alloc
                )
            cpu_util = np.nan_to_num(
                np.asarray(latest.cpu_util, dtype=float),
                nan=1.0, posinf=1.0, neginf=0.0,
            )
            for allow_down in (True, False):
                assert_candidates_equal(
                    space, current, cpu_util, None, allow_down
                )

    def test_normal_episode(self):
        self._sweep_episode(make_tiny_cluster(users=180, seed=31), 15)

    @pytest.mark.parametrize("profile", ["chaos", "telemetry-dropout"])
    def test_fault_episodes(self, profile):
        self._sweep_episode(make_faulty_cluster(180, 33, profile), 15)

    def test_bandit_explorer_episode(self):
        """The explorer's aggressive allocation swings exercise corners
        (bound-clipped rows, heavy dedupe) a managed episode avoids."""
        config = CollectionConfig(qos=QOS)
        self._sweep_episode(
            make_tiny_cluster(users=220, seed=35),
            20,
            policy=BanditExplorer(config, seed=7),
        )


class TestSelectEquivalence:
    """``_select_fast`` picks the same index as the list-based
    ``_select`` — including the EWMA hold-probability state both carry
    across decisions and every first-match tie-break."""

    def _schedulers(self, trained):  # noqa: F811
        space = tiny_space()
        fast = OnlineScheduler(trained, space, QOS)
        ref = OnlineScheduler(trained, space, QOS)
        return space, fast, ref

    def test_lockstep_selection(self, trained, rng):  # noqa: F811
        space, fast, ref = self._schedulers(trained)
        n = space.n_tiers
        for trial in range(30):
            current = np.round(rng.uniform(0.3, 6.0, n), 2)
            cpu_util = rng.uniform(0.0, 1.0, n)
            allow_down = bool(trial % 2)
            actions = space.candidates(
                current, cpu_util, allow_scale_down=allow_down
            )
            cset = space.candidates_fast(
                current, cpu_util, allow_scale_down=allow_down
            )
            b = len(actions)
            # Mix clearly-safe, borderline, and violating predictions so
            # every acceptability branch (and the no-acceptable fallback)
            # is hit across the sweep.
            pred_lat = rng.uniform(20.0, 400.0, b)
            prob = rng.uniform(0.0, 0.4, b)
            idx_ref = ref._select(actions, pred_lat, prob)
            idx_fast = fast._select_fast(cset, pred_lat, prob)
            assert idx_fast == idx_ref
            assert fast._hold_p_ewma == ref._hold_p_ewma

    def test_exact_ties_break_first_match(self, trained):  # noqa: F811
        """Identical scores across candidates: both paths must keep the
        generation-order first match."""
        space, fast, ref = self._schedulers(trained)
        n = space.n_tiers
        current = np.full(n, 2.0)
        actions = space.candidates(current, np.full(n, 0.3))
        cset = space.candidates_fast(current, np.full(n, 0.3))
        b = len(actions)
        pred_lat = np.full(b, 50.0)
        prob = np.full(b, 0.001)
        assert fast._select_fast(cset, pred_lat, prob) == ref._select(
            actions, pred_lat, prob
        )


class TestActionTotalCpuCache:
    """Satellite: ``Action.total_cpu`` is precomputed once per action;
    the cache must be transparent to the reference selection path."""

    def test_cached_value_matches_recompute(self):
        space = tiny_space()
        current = np.array([1.0, 2.0, 3.0, 4.0])
        for action in space.candidates(current, np.full(4, 0.5)):
            first = action.total_cpu
            assert first == float(np.sum(action.alloc))
            assert "total_cpu" in action.__dict__  # cached after access
            assert action.total_cpu is action.__dict__["total_cpu"]

    def test_reference_choice_unchanged_by_cache(self, trained, rng):  # noqa: F811
        """Pre-warming every cache cannot change what ``_select`` picks."""
        space = tiny_space()
        ref_a = OnlineScheduler(trained, space, QOS)
        ref_b = OnlineScheduler(trained, space, QOS)
        n = space.n_tiers
        for _ in range(10):
            current = np.round(rng.uniform(0.3, 6.0, n), 2)
            cold = space.candidates(current, np.full(n, 0.3))
            warm = space.candidates(current, np.full(n, 0.3))
            for action in warm:
                action.total_cpu  # populate the cache up front
            b = len(cold)
            pred_lat = rng.uniform(20.0, 400.0, b)
            prob = rng.uniform(0.0, 0.4, b)
            assert ref_a._select(cold, pred_lat, prob) == ref_b._select(
                warm, pred_lat, prob
            )


class TestFastControlTraceEquivalence:
    """Full-episode decision traces with ``fast_control`` on vs off.

    The predictor fast path stays on for both runs — only the control
    loop (candidate generation + selection) is toggled, so this isolates
    exactly the code the tentpole vectorized.  Decisions feed back into
    the simulator, so a single divergence would compound."""

    def _run_trace(self, trained, fast: bool, cluster_factory) -> list:  # noqa: F811
        cluster = cluster_factory()
        graph = make_tiny_graph()
        space = ActionSpace(graph.min_alloc(), graph.max_alloc())
        scheduler = OnlineScheduler(trained, space, QOS)
        scheduler.fast_control = fast
        trained.encoder.invalidate_cache()
        trace = []
        for _ in range(20):
            cluster.step(cluster.current_alloc)
            alloc = scheduler.decide(cluster.observed)
            if alloc is not None:
                cluster.step(alloc)
                trace.append(np.asarray(alloc, dtype=float).copy())
        trace.append(np.asarray(scheduler.prediction_trace, dtype=object))
        return trace

    def _assert_identical(self, trained, cluster_factory):  # noqa: F811
        fast = self._run_trace(trained, True, cluster_factory)
        ref = self._run_trace(trained, False, cluster_factory)
        assert len(fast) == len(ref)
        for a, b in zip(fast[:-1], ref[:-1]):
            assert np.array_equal(a, b)
        for rec_a, rec_b in zip(fast[-1], ref[-1]):
            assert rec_a.keys() == rec_b.keys()
            for key in rec_a:
                va, vb = rec_a[key], rec_b[key]
                assert va == vb or (np.isnan(va) and np.isnan(vb))

    def test_trace_identical_clean(self, trained):  # noqa: F811
        self._assert_identical(
            trained, lambda: make_tiny_cluster(users=180, seed=41)
        )

    @pytest.mark.parametrize(
        "profile", ["chaos", "telemetry-dropout", "crash-storm"]
    )
    def test_trace_identical_under_faults(self, trained, profile):  # noqa: F811
        self._assert_identical(
            trained, lambda: make_faulty_cluster(180, 43, profile)
        )
