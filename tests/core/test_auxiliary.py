"""Auxiliary (threshold) resource manager tests."""

import numpy as np
import pytest

from repro.core.auxiliary import BandwidthProvisioner, MemoryProvisioner
from tests.conftest import make_tiny_cluster


@pytest.fixture
def recorded():
    cluster = make_tiny_cluster(users=120, seed=4)
    cluster.run(15)
    return cluster


class TestMemoryProvisioner:
    def test_profile_tracks_peak(self, recorded):
        prov = MemoryProvisioner(recorded.graph)
        prov.profile(recorded.telemetry)
        rss = np.stack([s.rss_mb for s in recorded.telemetry])
        np.testing.assert_allclose(prov.peak_rss_mb, rss.max(axis=0))

    def test_limits_include_headroom(self, recorded):
        prov = MemoryProvisioner(recorded.graph, headroom=1.5)
        prov.profile(recorded.telemetry)
        np.testing.assert_allclose(prov.limits_mb(), prov.peak_rss_mb * 1.5)

    def test_limits_require_profile(self, recorded):
        prov = MemoryProvisioner(recorded.graph)
        with pytest.raises(RuntimeError):
            prov.limits_mb()

    def test_oom_detection(self, recorded):
        prov = MemoryProvisioner(recorded.graph, headroom=1.25)
        prov.profile(recorded.telemetry)
        assert not prov.would_oom(recorded.telemetry).any()

    def test_headroom_validation(self, recorded):
        with pytest.raises(ValueError):
            MemoryProvisioner(recorded.graph, headroom=0.5)


class TestBandwidthProvisioner:
    def test_limits_scale_with_load(self, recorded):
        prov = BandwidthProvisioner(recorded.graph)
        prov.profile(recorded.telemetry)
        low = prov.limits_pps(100.0)
        high = prov.limits_pps(300.0)
        np.testing.assert_allclose(high, 3 * low)

    def test_limits_cover_observed_traffic(self, recorded):
        prov = BandwidthProvisioner(recorded.graph, margin=2.0)
        prov.profile(recorded.telemetry)
        latest = recorded.telemetry.latest
        limits = prov.limits_pps(latest.rps)
        observed = latest.rx_pps + latest.tx_pps
        assert np.all(limits >= observed * 0.8)

    def test_requires_profile(self, recorded):
        prov = BandwidthProvisioner(recorded.graph)
        with pytest.raises(RuntimeError):
            prov.limits_pps(100.0)

    def test_margin_validation(self, recorded):
        with pytest.raises(ValueError):
            BandwidthProvisioner(recorded.graph, margin=0.9)
