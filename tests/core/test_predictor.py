"""Hybrid predictor end-to-end tests on the tiny application."""

import numpy as np
import pytest

from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.qos import QoSTarget
from repro.ml.cnn import CNNConfig
from tests.conftest import make_tiny_cluster, make_tiny_graph

QOS = QoSTarget(200.0)
FAST = PredictorConfig(
    epochs=20,
    batch_size=64,
    cnn=CNNConfig(conv_channels=(4,), rh_embed=16, lh_embed=8, rc_embed=8, latent_dim=16),
)


@pytest.fixture(scope="module")
def tiny_dataset():
    config = CollectionConfig(qos=QOS)
    collector = DataCollector(
        lambda users, seed: make_tiny_cluster(users, seed), config
    )
    result = collector.collect(
        BanditExplorer(config, seed=0), loads=[60, 160, 280], seconds_per_load=80
    )
    return result.dataset


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    predictor = HybridPredictor(make_tiny_graph(), QOS, FAST, seed=0)
    predictor.train(tiny_dataset)
    return predictor


class TestTraining:
    def test_report_populated(self, trained):
        report = trained.report
        assert report.rmse_val > 0
        assert 0.5 <= report.bt_accuracy_val <= 1.0
        assert 0 < report.p_up <= 0.9
        assert report.p_down < report.p_up
        assert report.n_train > report.n_val

    def test_untrained_predictor_guards(self, tiny_dataset):
        predictor = HybridPredictor(make_tiny_graph(), QOS, FAST, seed=0)
        with pytest.raises(RuntimeError):
            _ = predictor.rmse_val
        with pytest.raises(RuntimeError):
            _ = predictor.thresholds
        with pytest.raises(ValueError, match="trained"):
            from repro.core.retrain import fine_tune_predictor

            fine_tune_predictor(predictor, tiny_dataset, [10])

    def test_label_cap_requires_boundary_samples(self, tiny_dataset):
        predictor = HybridPredictor(
            make_tiny_graph(),
            QoSTarget(1e-3),  # absurd QoS: every sample above the cap
            FAST,
            seed=0,
        )
        with pytest.raises(ValueError, match="latency cap"):
            predictor.train(tiny_dataset)


class TestInference:
    def test_predict_raw_shapes(self, trained, tiny_dataset):
        lat, prob = trained.predict_raw(
            tiny_dataset.X_RH[:10], tiny_dataset.X_LH[:10], tiny_dataset.X_RC[:10]
        )
        assert lat.shape == (10, 5)
        assert prob.shape == (10,)
        assert np.all((prob >= 0) & (prob <= 1))

    def test_predict_candidates_from_live_log(self, trained):
        cluster = make_tiny_cluster(users=100, seed=9)
        cluster.run(8)
        candidates = np.stack(
            [cluster.current_alloc, cluster.current_alloc * 1.5]
        )
        lat, prob = trained.predict_candidates(cluster.telemetry, candidates)
        assert lat.shape == (2, 5)
        assert prob.shape == (2,)

    def test_predictions_track_reality_roughly(self, trained, tiny_dataset):
        """Predictions correlate with measured latency (sanity, not a
        strict accuracy bar)."""
        lat, _ = trained.predict_raw(
            tiny_dataset.X_RH, tiny_dataset.X_LH, tiny_dataset.X_RC
        )
        keep = tiny_dataset.y_lat[:, -1] < 480.0
        if keep.sum() > 20:
            corr = np.corrcoef(lat[keep, -1], tiny_dataset.y_lat[keep, -1])[0, 1]
            assert corr > 0.2

    def test_evaluate_keys(self, trained, tiny_dataset):
        metrics = trained.evaluate(tiny_dataset)
        assert set(metrics) == {"rmse", "bt_accuracy", "bt_false_neg", "bt_false_pos"}

    def test_threshold_calibration_props(self):
        probs = np.linspace(0, 1, 100)
        labels = (probs > 0.5).astype(float)
        p_up, p_down = HybridPredictor._calibrate_thresholds(probs, labels)
        assert 0.02 <= p_up <= 0.9
        assert p_down < p_up

    def test_threshold_calibration_no_violations(self):
        p_up, p_down = HybridPredictor._calibrate_thresholds(
            np.zeros(10), np.zeros(10)
        )
        assert p_up == 0.5


class TestSerialization:
    def test_save_load_roundtrip(self, trained, tiny_dataset, tmp_path):
        path = tmp_path / "predictor.pkl"
        trained.save(path)
        loaded = HybridPredictor.load(path)
        lat_a, prob_a = trained.predict_raw(
            tiny_dataset.X_RH[:5], tiny_dataset.X_LH[:5], tiny_dataset.X_RC[:5]
        )
        lat_b, prob_b = loaded.predict_raw(
            tiny_dataset.X_RH[:5], tiny_dataset.X_LH[:5], tiny_dataset.X_RC[:5]
        )
        np.testing.assert_allclose(lat_a, lat_b)
        np.testing.assert_allclose(prob_a, prob_b)

    def test_load_rejects_foreign_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"not": "a predictor"}, fh)
        with pytest.raises(TypeError):
            HybridPredictor.load(path)

    def test_load_rejects_pre_versioning_pickle(self, trained, tmp_path):
        """A raw (format-1) predictor pickle gets a clear version error."""
        import pickle

        path = tmp_path / "old.pkl"
        with open(path, "wb") as fh:
            pickle.dump(trained, fh)
        with pytest.raises(ValueError, match="format"):
            HybridPredictor.load(path)

    def test_fast_path_trained_model_roundtrips(self, tiny_dataset, tmp_path):
        """A model trained on the fast paths (histogram trees, im2col
        CNN) saves and loads like any other: tree margins bitwise equal
        pre/post, CNN predictions equal, toggle state preserved."""
        predictor = HybridPredictor(make_tiny_graph(), QOS, FAST, seed=0)
        predictor.fast_train = True
        predictor.train(tiny_dataset)
        x_rh = tiny_dataset.X_RH[:8]
        x_lh = tiny_dataset.X_LH[:8]
        x_rc = tiny_dataset.X_RC[:8]
        inputs = predictor._model_inputs(x_rh, x_lh, x_rc)
        _, latent = predictor.cnn.predict_with_latent(inputs)
        bt_X = predictor._bt_features(latent, x_rh, x_lh, x_rc)
        margin_before = predictor.trees.predict_margin(bt_X)

        path = tmp_path / "fast-trained.pkl"
        predictor.save(path)
        loaded = HybridPredictor.load(path)

        assert np.array_equal(loaded.trees.predict_margin(bt_X), margin_before)
        lat_a, prob_a = predictor.predict_raw(x_rh, x_lh, x_rc)
        lat_b, prob_b = loaded.predict_raw(x_rh, x_lh, x_rc)
        assert np.array_equal(lat_a, lat_b)
        assert np.array_equal(prob_a, prob_b)
        # The toggle itself survives the round trip.
        assert loaded.__dict__.get("fast_train", True) is True

    def test_load_rejects_format_mismatch(self, trained, tmp_path):
        import pickle

        path = tmp_path / "future.pkl"
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "format": HybridPredictor.SAVE_FORMAT + 1,
                    "kind": "repro.HybridPredictor",
                    "predictor": trained,
                },
                fh,
            )
        with pytest.raises(ValueError, match="format"):
            HybridPredictor.load(path)


class TestScalerAlpha:
    def test_explicit_alpha_is_honored(self):
        cfg = PredictorConfig(scaler_alpha=0.002)
        predictor = HybridPredictor(make_tiny_graph(), QOS, cfg, seed=0)
        assert predictor.scaler.alpha == 0.002

    def test_none_alpha_derived_from_qos(self):
        predictor = HybridPredictor(make_tiny_graph(), QOS, seed=0)
        assert predictor.scaler.alpha == pytest.approx(1.0 / QOS.latency_ms)

    def test_zero_alpha_is_not_treated_as_unset(self):
        """Falsy-zero regression: an explicit ``scaler_alpha=0.0`` used
        to silently fall back to the QoS-derived value; it must instead
        hit the scaler's own positivity check."""
        with pytest.raises(ValueError, match="alpha"):
            HybridPredictor(
                make_tiny_graph(), QOS, PredictorConfig(scaler_alpha=0.0), seed=0
            )


class TestScoreBuckets:
    def test_retrain_invalidates_cached_buckets(self, trained, tiny_dataset):
        """``_lat_buckets`` derives from ``rmse_val``; installing a new
        TrainingReport (fine-tune / promotion) must drop the cache so the
        observability histograms track the new model's error scale."""
        import copy

        tuned = copy.deepcopy(trained)
        before = tuned._score_buckets()
        assert tuned.__dict__.get("_lat_buckets") == before  # cached
        tuned.fine_tune(tiny_dataset, epochs=1)
        assert "_lat_buckets" not in tuned.__dict__
        after = tuned._score_buckets()
        assert after[0] == pytest.approx(
            round(max(float(tuned.rmse_val), 1.0), 3)
        )


class TestFineTune:
    def test_fine_tune_updates_report(self, trained, tiny_dataset):
        import copy

        tuned = copy.deepcopy(trained)
        before = [p.copy() for p in tuned.cnn.params()]
        tuned.fine_tune(tiny_dataset, lr_scale=0.01, epochs=2)
        assert tuned.report is not None
        moved = any(
            not np.allclose(b, p) for b, p in zip(before, tuned.cnn.params())
        )
        assert moved

    def test_fine_tune_keeps_normalizer(self, trained, tiny_dataset):
        import copy

        tuned = copy.deepcopy(trained)
        scale_before = tuned.normalizer.rc_scale
        tuned.fine_tune(tiny_dataset, epochs=1)
        assert tuned.normalizer.rc_scale == scale_before
