"""Action-space tests (paper Table 1)."""

import numpy as np
import pytest

from repro.core.actions import Action, ActionKind, ActionSpace


@pytest.fixture
def space():
    return ActionSpace(
        min_alloc=np.full(4, 0.2),
        max_alloc=np.full(4, 8.0),
        util_cap=0.6,
    )


def kinds_of(actions):
    return {a.kind for a in actions}


class TestCandidateGeneration:
    def test_contains_table1_kinds(self, space):
        current = np.full(4, 2.0)
        util = np.array([0.1, 0.2, 0.3, 0.4])
        victims = np.array([True, False, False, False])
        actions = space.candidates(current, util, victims=victims)
        got = kinds_of(actions)
        assert ActionKind.HOLD in got
        assert ActionKind.SCALE_DOWN in got
        assert ActionKind.SCALE_DOWN_BATCH in got
        assert ActionKind.SCALE_UP in got
        assert ActionKind.SCALE_UP_ALL in got
        assert ActionKind.SCALE_UP_VICTIM in got

    def test_exactly_one_hold(self, space):
        actions = space.candidates(np.full(4, 2.0), np.full(4, 0.3))
        holds = [a for a in actions if a.kind is ActionKind.HOLD]
        assert len(holds) == 1
        np.testing.assert_allclose(holds[0].alloc, 2.0)

    def test_all_candidates_within_bounds(self, space):
        actions = space.candidates(np.full(4, 2.0), np.full(4, 0.3))
        for action in actions:
            assert np.all(action.alloc >= space.min_alloc - 1e-12)
            assert np.all(action.alloc <= space.max_alloc + 1e-12)

    def test_allow_scale_down_false_removes_downs(self, space):
        actions = space.candidates(
            np.full(4, 2.0), np.full(4, 0.1), allow_scale_down=False
        )
        got = kinds_of(actions)
        assert ActionKind.SCALE_DOWN not in got
        assert ActionKind.SCALE_DOWN_BATCH not in got
        assert ActionKind.SCALE_UP in got

    def test_util_cap_blocks_hot_tier_downscale(self, space):
        current = np.full(4, 2.0)
        util = np.array([0.59, 0.1, 0.1, 0.1])  # tier 0 busy = 1.18 cores
        actions = space.candidates(current, util)
        for action in actions:
            if action.kind is ActionKind.SCALE_DOWN and action.alloc[0] < 2.0:
                projected = 0.59 * 2.0 / action.alloc[0]
                assert projected <= space.util_cap + 1e-9

    def test_hot_tier_does_not_veto_other_downscales(self, space):
        """Regression: a tier already above the cap must not block
        reclaiming other idle tiers."""
        current = np.full(4, 2.0)
        util = np.array([0.9, 0.01, 0.01, 0.01])
        actions = space.candidates(current, util)
        downs = [
            a for a in actions
            if a.kind in (ActionKind.SCALE_DOWN, ActionKind.SCALE_DOWN_BATCH)
        ]
        assert downs, "idle tiers should still be reclaimable"
        for action in downs:
            assert action.alloc[0] == pytest.approx(2.0)  # hot tier untouched

    def test_at_floor_no_scale_down(self, space):
        current = np.full(4, 0.2)
        actions = space.candidates(current, np.full(4, 0.05))
        got = kinds_of(actions)
        assert ActionKind.SCALE_DOWN not in got
        assert ActionKind.SCALE_DOWN_BATCH not in got

    def test_at_ceiling_no_single_scale_up(self, space):
        current = np.full(4, 8.0)
        actions = space.candidates(current, np.full(4, 0.3))
        assert ActionKind.SCALE_UP not in kinds_of(actions)
        assert ActionKind.SCALE_UP_ALL not in kinds_of(actions)

    def test_victims_scale_up(self, space):
        current = np.full(4, 2.0)
        victims = np.array([False, True, True, False])
        actions = space.candidates(current, np.full(4, 0.3), victims=victims)
        victim_ups = [a for a in actions if a.kind is ActionKind.SCALE_UP_VICTIM]
        assert len(victim_ups) == 1
        changed = victim_ups[0].alloc != current
        np.testing.assert_array_equal(changed, victims)

    def test_no_victim_action_without_victims(self, space):
        actions = space.candidates(np.full(4, 2.0), np.full(4, 0.3))
        assert ActionKind.SCALE_UP_VICTIM not in kinds_of(actions)

    def test_batch_targets_least_utilized(self, space):
        current = np.full(4, 2.0)
        util = np.array([0.5, 0.05, 0.4, 0.02])
        actions = space.candidates(current, util)
        batch2 = [
            a for a in actions
            if a.kind is ActionKind.SCALE_DOWN_BATCH and "2 least" in a.description
        ]
        assert batch2
        reduced = np.flatnonzero(batch2[0].alloc < current)
        assert set(reduced) == {1, 3}

    def test_candidates_are_unique(self, space):
        """Regression: distinct steps clipping to the same boundary used
        to produce duplicate allocations that were scored twice."""
        for current_val in (0.3, 2.0, 7.9):  # near floor, middle, near ceiling
            current = np.full(4, current_val)
            victims = np.array([True, False, False, True])
            actions = space.candidates(
                current, np.full(4, 0.1), victims=victims
            )
            keys = [tuple(np.round(a.alloc, 9)) for a in actions]
            assert len(keys) == len(set(keys))

    def test_dedupe_keeps_most_specific_kind(self, space):
        """When a victim boost coincides with a generic single-tier
        upscale, the victim action's label survives."""
        current = np.full(4, 2.0)
        victims = np.array([True, False, False, False])
        actions = space.candidates(
            current, np.full(4, 0.3), victims=victims
        )
        got = kinds_of(actions)
        assert ActionKind.SCALE_UP_VICTIM in got
        assert ActionKind.SCALE_UP in got

    def test_max_allocation_action(self, space):
        action = space.max_allocation_action()
        np.testing.assert_allclose(action.alloc, space.max_alloc)
        assert action.kind is ActionKind.SCALE_UP_ALL

    def test_total_cpu(self):
        action = Action(ActionKind.HOLD, np.array([1.0, 2.0]), "hold")
        assert action.total_cpu == pytest.approx(3.0)
