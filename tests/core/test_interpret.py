"""LIME-style explainability tests.

Uses a stub predictor whose latency depends on a single known tier, so
the attribution must rank that tier first.
"""

import numpy as np
import pytest

from repro.core.interpret import LimeExplainer, TierAttribution
from repro.core.qos import QoSTarget
from repro.sim.telemetry import LATENCY_PERCENTILES
from repro.ml.dataset import SinanDataset
from tests.conftest import make_tiny_graph


class OneTierPredictor:
    """Predicted p99 responds only to the 'logic' tier's utilization
    history and allocation; other tiers are inert."""

    def __init__(self, graph, qos, hot_tier="logic", hot_channel=0):
        self.graph = graph
        self.qos = qos
        self.hot = graph.index[hot_tier]
        self.hot_channel = hot_channel

    def predict_raw(self, x_rh, x_lh, x_rc):
        signal = (
            x_rh[:, self.hot_channel, self.hot, :].mean(axis=1) * 100.0
            - x_rc[:, self.hot] * 10.0
        )
        lat = np.repeat(signal[:, None], len(LATENCY_PERCENTILES), axis=1)
        return lat, np.zeros(len(x_rh))


def make_dataset(graph, n=30, seed=0):
    rng = np.random.default_rng(seed)
    m = len(LATENCY_PERCENTILES)
    return SinanDataset(
        X_RH=np.abs(rng.normal(size=(n, 6, graph.n_tiers, 5))) + 0.5,
        X_LH=np.abs(rng.normal(size=(n, 5, m))) * 100,
        X_RC=np.abs(rng.normal(size=(n, graph.n_tiers))) + 1.0,
        y_lat=np.linspace(100, 600, n)[:, None] * np.ones((n, m)),
        y_viol=np.zeros(n),
    )


@pytest.fixture
def setup():
    graph = make_tiny_graph()
    qos = QoSTarget(200.0)
    predictor = OneTierPredictor(graph, qos)
    dataset = make_dataset(graph)
    return graph, predictor, dataset


class TestExplainTiers:
    def test_identifies_influential_tier(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, n_perturbations=200, seed=0)
        ranked = explainer.explain_tiers(dataset, top_k=4)
        assert ranked[0].name == "logic"
        assert abs(ranked[0].weight) > abs(ranked[-1].weight)

    def test_top_k_respected(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, n_perturbations=100, seed=0)
        assert len(explainer.explain_tiers(dataset, top_k=2)) == 2

    def test_attributions_are_named_tuples(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, n_perturbations=60, seed=0)
        for attr in explainer.explain_tiers(dataset, top_k=3):
            assert isinstance(attr, TierAttribution)
            assert attr.name in graph.tier_names


class TestExplainResources:
    def test_identifies_influential_channel(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, n_perturbations=200, seed=1)
        ranked = explainer.explain_resources(dataset, tier="logic", top_k=3)
        assert ranked[0].name == "cpu_util"  # hot channel is 0

    def test_unknown_tier_raises(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, n_perturbations=20, seed=0)
        with pytest.raises(KeyError):
            explainer.explain_resources(dataset, tier="nope")


class TestConfig:
    def test_invalid_factor_range(self, setup):
        graph, predictor, _ = setup
        with pytest.raises(ValueError):
            LimeExplainer(predictor, factor_range=(1.3, 0.5))
        with pytest.raises(ValueError):
            LimeExplainer(predictor, factor_range=(0.0, 1.0))

    def test_prefers_violation_samples(self, setup):
        graph, predictor, dataset = setup
        explainer = LimeExplainer(predictor, seed=0)
        chosen = explainer._violation_samples(dataset, max_samples=5)
        assert len(chosen) <= 5
        # All chosen samples exceed QoS (dataset has many violations).
        assert np.all(chosen.y_lat[:, -1] > 200.0)
