"""AutoScale and PowerChief baseline tests."""

import numpy as np
import pytest

from repro.baselines.autoscale import (
    AUTOSCALE_CONS_RULES,
    AUTOSCALE_OPT_RULES,
    AutoScale,
    StepRule,
)
from repro.baselines.powerchief import PowerChief
from repro.sim.telemetry import TelemetryLog
from tests.sim.test_telemetry import make_stats

N = 4
MIN = np.full(N, 0.2)
MAX = np.full(N, 8.0)


def log_with_util(util_values, alloc=2.0, rx=None, tx=None):
    log = TelemetryLog()
    stats = make_stats(alloc=alloc, n=N)
    stats.cpu_util[:] = util_values
    if rx is not None:
        stats.rx_pps[:] = rx
    if tx is not None:
        stats.tx_pps[:] = tx
    log.append(stats)
    return log


class TestStepRule:
    def test_band_membership(self):
        rule = StepRule(0.3, 0.4, 0.9)
        util = np.array([0.25, 0.3, 0.39, 0.4])
        np.testing.assert_array_equal(
            rule.applies(util), [False, True, True, False]
        )


class TestAutoScale:
    def test_opt_rules_match_paper(self):
        """AutoScaleOpt: +10% in [60,70), +30% in [70,100]; -10% in
        [30,40), -30% in [0,30) (paper Section 5.3)."""
        mgr = AutoScale(MIN, MAX, AUTOSCALE_OPT_RULES, cooldown=1)
        log = log_with_util([0.65, 0.75, 0.35, 0.1])
        alloc = mgr.decide(log)
        np.testing.assert_allclose(
            alloc, [2.0 * 1.1, 2.0 * 1.3, 2.0 * 0.9, 2.0 * 0.7]
        )

    def test_cons_rules_match_paper(self):
        """AutoScaleCons: +10% in [30,50), +30% in [50,100]; -10% below 10%."""
        mgr = AutoScale(MIN, MAX, AUTOSCALE_CONS_RULES, cooldown=1)
        log = log_with_util([0.35, 0.6, 0.05, 0.2])
        alloc = mgr.decide(log)
        np.testing.assert_allclose(
            alloc, [2.0 * 1.1, 2.0 * 1.3, 2.0 * 0.9, 2.0]
        )

    def test_stable_band_untouched(self):
        mgr = AutoScale.opt(MIN, MAX, cooldown=1)
        log = log_with_util([0.5, 0.45, 0.55, 0.5])
        np.testing.assert_allclose(mgr.decide(log), 2.0)

    def test_clipped_to_bounds(self):
        mgr = AutoScale.opt(MIN, MAX, cooldown=1)
        log = log_with_util([0.9] * N, alloc=7.5)
        assert np.all(mgr.decide(log) <= MAX)
        log = log_with_util([0.01] * N, alloc=0.21)
        assert np.all(mgr.decide(log) >= MIN)

    def test_cooldown_blocks_consecutive_changes(self):
        mgr = AutoScale.opt(MIN, MAX, cooldown=5)
        first = mgr.decide(log_with_util([0.9] * N))
        assert first[0] > 2.0  # reacted
        second = mgr.decide(log_with_util([0.9] * N, alloc=first[0]))
        np.testing.assert_allclose(second, first)  # cooling down

    def test_empty_log_holds(self):
        mgr = AutoScale.opt(MIN, MAX)
        assert mgr.decide(TelemetryLog()) is None

    def test_reset_clears_cooldown(self):
        mgr = AutoScale.opt(MIN, MAX, cooldown=10)
        mgr.decide(log_with_util([0.9] * N))
        mgr.reset()
        alloc = mgr.decide(log_with_util([0.9] * N))
        assert alloc[0] > 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoScale(MIN, MAX, cooldown=0)

    def test_names(self):
        assert AutoScale.opt(MIN, MAX).name == "AutoScaleOpt"
        assert AutoScale.conservative(MIN, MAX).name == "AutoScaleCons"


class TestPowerChief:
    def test_boosts_longest_queue_tier(self):
        mgr = PowerChief(MIN, MAX, top_k=1)
        # tier 2 accumulates a backlog (rx >> tx)
        rx = np.array([10.0, 10.0, 500.0, 10.0])
        tx = np.array([10.0, 10.0, 100.0, 10.0])
        log = log_with_util([0.5] * N, rx=rx, tx=tx)
        alloc = mgr.decide(log)
        assert alloc[2] > alloc[0]

    def test_provisions_proportionally_to_demand(self):
        mgr = PowerChief(MIN, MAX, target_util=0.5)
        log = log_with_util([0.8, 0.2, 0.2, 0.2], alloc=2.0)
        alloc = mgr.decide(log)
        # busy = util * alloc; base = busy / 0.5
        assert alloc[0] == pytest.approx(0.8 * 2.0 / 0.5, rel=0.01)

    def test_backlog_decays(self):
        mgr = PowerChief(MIN, MAX)
        rx = np.array([500.0, 10.0, 10.0, 10.0])
        tx = np.array([100.0, 10.0, 10.0, 10.0])
        mgr.decide(log_with_util([0.5] * N, rx=rx, tx=tx))
        high = mgr._backlog[0]
        # Backlog clears once traffic balances.
        for _ in range(10):
            mgr.decide(log_with_util([0.5] * N, rx=tx, tx=tx))
        assert mgr._backlog[0] < high * 0.2

    def test_boost_decays_after_blame_stops(self):
        mgr = PowerChief(MIN, MAX)
        rx = np.array([500.0, 10.0, 10.0, 10.0])
        tx = np.array([100.0, 10.0, 10.0, 10.0])
        mgr.decide(log_with_util([0.5] * N, rx=rx, tx=tx))
        boosted = mgr._boost[0]
        assert boosted > 1.0
        balanced = np.full(N, 10.0)
        for _ in range(30):
            mgr.decide(log_with_util([0.5] * N, rx=balanced, tx=balanced))
        assert mgr._boost[0] < boosted

    def test_bounds_respected(self):
        mgr = PowerChief(MIN, MAX)
        log = log_with_util([1.0] * N, alloc=8.0)
        alloc = mgr.decide(log)
        assert np.all(alloc <= MAX + 1e-9)
        assert np.all(alloc >= MIN - 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerChief(MIN, MAX, target_util=1.5)

    def test_empty_log_holds(self):
        assert PowerChief(MIN, MAX).decide(TelemetryLog()) is None

    def test_reset(self):
        mgr = PowerChief(MIN, MAX)
        mgr.decide(log_with_util([0.5] * N))
        mgr.reset()
        assert mgr._backlog is None and mgr._boost is None


class TestStaticManager:
    def test_static(self):
        from repro.core.manager import StaticManager

        mgr = StaticManager(np.full(N, 3.0))
        alloc = mgr.decide(TelemetryLog())
        np.testing.assert_allclose(alloc, 3.0)
        alloc[0] = 99  # returned copy must not alias internal state
        np.testing.assert_allclose(mgr.decide(TelemetryLog()), 3.0)
