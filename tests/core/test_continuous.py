"""Continuous-learning pipeline tests: registry, worker, shadow,
promotion gate, state machine, and the bitwise shadow-equivalence suite.
"""

import numpy as np
import pytest

from repro.core.drift import DriftConfig
from repro.core.retrain import (
    ContinuousSinanManager,
    GateDecision,
    ModelRegistry,
    PromotionGate,
    RetrainConfig,
    RetrainWorker,
    ShadowEvaluator,
    ShadowReport,
)
from repro.core.scheduler import SchedulerConfig
from repro.core.sinan import SinanManager
from repro.obs.audit import (
    EVENT_DRIFT,
    EVENT_PROMOTED,
    EVENT_REJECTED,
    EVENT_RETRAIN_STARTED,
    EVENT_SHADOW_STARTED,
    DivergenceRecord,
    ModelEventRecord,
)
from repro.sim.cluster import ClusterSimulator
from repro.sim.faults import FaultInjector, resolve_profile
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_graph
from tests.core.test_predictor import FAST, QOS, tiny_dataset, trained  # noqa: F401
from tests.core.test_scheduler import StubPredictor, make_log, make_scheduler


class TunableStub(StubPredictor):
    """Stub whose ``fine_tune`` flips it into a 'repaired' model."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.tuned = False
        self._thresholds = (0.02, 0.08)

    @property
    def thresholds(self):
        return self._thresholds

    def fine_tune(self, dataset, lr_scale=0.01, epochs=None, seed=None, **kw):
        self.tuned = True
        self._thresholds = (0.05, 0.3)


def make_manager(stub=None, *, collect=0, promote=True, **overrides):
    """Continuous manager on the tiny graph with fast-loop defaults."""
    kwargs = dict(
        drift_config=DriftConfig(
            window=10, min_decisions=5, misprediction_rate=0.2, cooldown=100
        ),
        retrain_config=RetrainConfig(delivery_intervals=5, shadow_intervals=8),
        gate=PromotionGate(min_intervals=5),
    )
    kwargs.update(overrides)
    if collect == 0:
        collect = lambda seed: None  # noqa: E731 - stub dataset
    return ContinuousSinanManager(
        stub or TunableStub(),
        QOS,
        collect=collect,
        graph=make_tiny_graph(),
        promote=promote,
        **kwargs,
    )


def drive(manager, n, p99=100.0, alternate=False):
    """Feed ``n`` decisions; ``alternate`` interleaves violations."""
    for i in range(n):
        level = 400.0 if (alternate and i % 2) else p99
        manager.decide(make_log(p99=level))


class TestModelRegistry:
    def test_memory_register_get_promote(self):
        registry = ModelRegistry()
        a, b = object.__new__(StubPredictor), object.__new__(StubPredictor)
        entry_a = registry.register(a, source="initial")
        entry_b = registry.register(b, source="fine-tune@10", parent=entry_a.version)
        assert (entry_a.version, entry_b.version) == (1, 2)
        assert registry.get(1) is a and registry.get(2) is b
        assert registry.active is None
        registry.promote(2, metrics={"mae": 12.5})
        assert registry.active == 2
        assert registry.entry(2).promoted
        assert registry.entry(2).metrics["mae"] == 12.5
        assert not registry.entry(1).promoted

    def test_unknown_version_raises(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError, match="version"):
            registry.entry(7)

    def test_disk_manifest_roundtrip(self, tmp_path):
        class FakeModel:
            saved_to = None

            def save(self, path):
                FakeModel.saved_to = path
                path.write_bytes(b"envelope")

        registry = ModelRegistry(tmp_path / "models")
        entry = registry.register(FakeModel(), source="initial")
        registry.promote(entry.version)
        assert (tmp_path / "models" / entry.file).read_bytes() == b"envelope"

        resumed = ModelRegistry(tmp_path / "models")
        assert resumed.active == entry.version
        assert len(resumed) == 1
        assert resumed.entry(1).source == "initial"
        assert resumed.entry(1).promoted

    def test_disk_versions_are_save_envelopes(self, trained, tmp_path):  # noqa: F811
        """Disk registry entries are ordinary SAVE_FORMAT pickles: any
        registered version loads with HybridPredictor.load."""
        from repro.core.predictor import HybridPredictor

        registry = ModelRegistry(tmp_path / "models")
        entry = registry.register(trained, source="initial")
        loaded = registry.get(entry.version)
        assert isinstance(loaded, HybridPredictor)
        assert loaded.rmse_val == trained.rmse_val
        direct = HybridPredictor.load(tmp_path / "models" / entry.file)
        assert direct.rmse_val == trained.rmse_val


class TestRetrainWorker:
    def test_delivery_latency_is_deterministic(self):
        worker = RetrainWorker(
            lambda seed: None, RetrainConfig(delivery_intervals=5)
        )
        worker.submit(TunableStub(), interval=10)
        assert worker.busy
        assert worker.poll(14) is None
        challenger = worker.poll(15)
        assert challenger is not None and challenger.tuned
        assert not worker.busy

    def test_challenger_is_a_copy(self):
        incumbent = TunableStub()
        worker = RetrainWorker(
            lambda seed: None, RetrainConfig(delivery_intervals=0)
        )
        worker.submit(incumbent, interval=0)
        challenger = worker.poll(0)
        assert challenger is not incumbent
        assert challenger.tuned and not incumbent.tuned

    def test_double_submit_rejected(self):
        worker = RetrainWorker(lambda seed: None, RetrainConfig())
        worker.submit(TunableStub(), interval=0)
        with pytest.raises(RuntimeError, match="in flight"):
            worker.submit(TunableStub(), interval=1)

    def test_failure_surfaces_error_and_clears(self):
        calls = []

        def explode(seed):
            calls.append(seed)
            raise RuntimeError("collection died")

        worker = RetrainWorker(explode, RetrainConfig(delivery_intervals=2))
        worker.submit(TunableStub(), interval=0)
        assert worker.poll(2) is None
        assert "collection died" in worker.error
        assert not worker.busy  # can resubmit
        worker.submit(TunableStub(), interval=3)
        assert len(calls) == 2  # second attempt actually ran

    def test_seeds_bump_per_submission(self):
        seeds = []
        worker = RetrainWorker(
            lambda seed: seeds.append(seed), RetrainConfig(delivery_intervals=0, seed=40)
        )
        worker.submit(TunableStub(), 0)
        worker.poll(0)
        worker.submit(TunableStub(), 1)
        assert seeds == [40, 41]

    def test_thread_mode_delivers(self):
        worker = RetrainWorker(
            lambda seed: None,
            RetrainConfig(delivery_intervals=0, use_thread=True),
        )
        worker.submit(TunableStub(), interval=0)
        if worker._thread is not None:
            worker._thread.join()
        challenger = worker.poll(0)
        assert challenger is not None and challenger.tuned

    def test_cancel_drops_pending(self):
        worker = RetrainWorker(lambda seed: None, RetrainConfig(delivery_intervals=0))
        worker.submit(TunableStub(), interval=0)
        worker.cancel()
        assert worker.poll(100) is None
        assert not worker.busy


class TestShadowEvaluator:
    def test_agreement_produces_no_record(self):
        incumbent = make_scheduler(StubPredictor())
        shadow = ShadowEvaluator(StubPredictor(), incumbent, version=2)
        log = make_log()
        alloc = incumbent.decide(log)
        assert shadow.observe(log, alloc) is None
        report = shadow.report()
        assert report.intervals == 1 and report.divergences == 0

    def test_divergence_record_fields(self):
        incumbent = make_scheduler(StubPredictor())  # happily scales down

        def challenger_prob(alloc):
            # hold is risky, only big scale-ups acceptable
            return 0.02 if alloc.sum() > 8.5 else 0.5

        shadow = ShadowEvaluator(
            StubPredictor(prob_fn=challenger_prob), incumbent, version=3
        )
        log = make_log()
        alloc = incumbent.decide(log)
        record = shadow.observe(log, alloc)
        assert isinstance(record, DivergenceRecord)
        assert record.challenger_version == 3
        assert record.challenger_total_cpu > record.incumbent_total_cpu
        assert record.incumbent_kind == "scale-down"
        assert shadow.report().divergences == 1

    def test_calibration_mae_pairs_lagged_predictions(self):
        incumbent = make_scheduler(StubPredictor(latency_fn=lambda a: 120.0))
        shadow = ShadowEvaluator(
            StubPredictor(latency_fn=lambda a: 80.0), incumbent, version=2
        )
        for _ in range(4):
            log = make_log(p99=100.0)
            alloc = incumbent.decide(log)
            shadow.observe(log, alloc)
        report = shadow.report()
        # First observe has no previous prediction; three pairs follow.
        assert report.calibration_samples == 3
        assert report.incumbent_mae_ms == pytest.approx(20.0)
        assert report.challenger_mae_ms == pytest.approx(20.0)

    def test_incumbent_counters_are_window_deltas(self):
        incumbent = make_scheduler(StubPredictor())
        incumbent.decide(make_log(p99=100.0))
        incumbent.decide(make_log(p99=400.0))  # misprediction before shadow
        shadow = ShadowEvaluator(StubPredictor(), incumbent, version=2)
        log = make_log(p99=100.0)
        shadow.observe(log, incumbent.decide(log))
        assert shadow.report().incumbent_mispredictions == 0


def report_with(**overrides) -> ShadowReport:
    base = dict(
        version=2, intervals=30, divergences=4,
        challenger_mispredictions=0, challenger_fallbacks=0,
        incumbent_mispredictions=5, incumbent_fallbacks=0,
        challenger_mae_ms=20.0, incumbent_mae_ms=40.0,
        calibration_samples=20,
    )
    base.update(overrides)
    return ShadowReport(**base)


class TestPromotionGate:
    def test_clean_report_promotes(self):
        decision = PromotionGate().judge(report_with())
        assert decision.promote and decision.reason == "ok"
        assert decision.metrics["intervals"] == 30

    def test_too_short_shadow_rejected(self):
        decision = PromotionGate(min_intervals=40).judge(report_with())
        assert not decision.promote
        assert decision.reason == "shadow-too-short"

    def test_misprediction_rate_rejected(self):
        decision = PromotionGate().judge(
            report_with(challenger_mispredictions=10)
        )
        assert decision.reason == "misprediction-rate"

    def test_fallback_rate_rejected(self):
        decision = PromotionGate().judge(report_with(challenger_fallbacks=20))
        assert decision.reason == "fallback-rate"

    def test_worse_calibration_rejected(self):
        decision = PromotionGate().judge(report_with(challenger_mae_ms=60.0))
        assert decision.reason == "calibration-no-better"

    def test_missing_calibration_skips_mae_check(self):
        decision = PromotionGate().judge(
            report_with(challenger_mae_ms=float("nan"), calibration_samples=0)
        )
        assert decision.promote

    def test_cpu_regression_rejected(self):
        decision = PromotionGate().judge(report_with(
            challenger_mean_total_cpu=120.0,
            incumbent_mean_total_cpu=100.0,
        ))
        assert not decision.promote
        assert decision.reason == "cpu-regression"
        assert decision.metrics["challenger_mean_total_cpu"] == 120.0

    def test_cpu_within_tolerance_promotes(self):
        decision = PromotionGate().judge(report_with(
            challenger_mean_total_cpu=104.0,
            incumbent_mean_total_cpu=100.0,
        ))
        assert decision.promote

    def test_cpu_regression_tolerance_is_configurable(self):
        gate = PromotionGate(max_cpu_regression=0.5)
        decision = gate.judge(report_with(
            challenger_mean_total_cpu=120.0,
            incumbent_mean_total_cpu=100.0,
        ))
        assert decision.promote

    def test_missing_cpu_samples_skip_cpu_check(self):
        # Default report carries NaN CPU means (legacy reports, or a
        # shadow that never observed a decision) — not a rejection.
        decision = PromotionGate().judge(report_with())
        assert decision.promote

    def test_shadow_report_tracks_cpu_means(self):
        incumbent = make_scheduler(StubPredictor())
        shadow = ShadowEvaluator(StubPredictor(), incumbent, version=2)
        for _ in range(3):
            log = make_log(p99=100.0)
            shadow.observe(log, incumbent.decide(log))
        report = shadow.report()
        assert np.isfinite(report.challenger_mean_total_cpu)
        assert np.isfinite(report.incumbent_mean_total_cpu)
        assert report.incumbent_mean_total_cpu > 0

    def test_decision_is_dataclass(self):
        assert GateDecision(True, "ok").metrics == {}


class TestContinuousStateMachine:
    def test_healthy_stream_stays_in_monitor(self):
        manager = make_manager()
        drive(manager, 40, p99=100.0)
        assert manager.state == manager.STATE_MONITOR
        assert manager.retrains == 0 and manager.events == []

    def test_drift_triggers_retrain_then_shadow(self):
        manager = make_manager()
        drive(manager, 20, alternate=True)
        events = [e.event for e in manager.events
                  if isinstance(e, ModelEventRecord)]
        assert events[:3] == [EVENT_DRIFT, EVENT_RETRAIN_STARTED,
                              EVENT_SHADOW_STARTED]
        assert manager.retrains == 1

    def test_full_cycle_promotes_passing_challenger(self):
        manager = make_manager(
            scheduler_config=SchedulerConfig(p_down=None, p_up=None)
        )
        drive(manager, 10, alternate=True)  # drift + retrain delivery
        drive(manager, 24, p99=100.0)  # clean shadow window
        assert manager.promotions == 1
        assert manager.predictor.tuned  # challenger is live
        assert manager.incumbent_version == 2
        assert manager.registry.active == 2
        assert manager.registry.entry(2).promoted
        # Promotion refreshed the calibrated thresholds.
        assert manager.scheduler.p_down == pytest.approx(0.05)
        assert manager.scheduler.p_up == pytest.approx(0.3)
        promoted = [e for e in manager.events
                    if isinstance(e, ModelEventRecord)
                    and e.event == EVENT_PROMOTED]
        assert len(promoted) == 1 and promoted[0].version == 2

    def test_promotion_disabled_keeps_incumbent(self):
        manager = make_manager(promote=False)
        drive(manager, 10, alternate=True)
        drive(manager, 24, p99=100.0)
        assert manager.promotions == 0
        assert not manager.predictor.tuned
        assert manager.incumbent_version == 1
        rejected = [e for e in manager.events
                    if isinstance(e, ModelEventRecord)
                    and e.event == EVENT_REJECTED]
        assert rejected and rejected[0].reason == "promotion-disabled"

    def test_failing_challenger_rejected(self):
        class BrokenTune(TunableStub):
            def fine_tune(self, dataset, **kw):
                super().fine_tune(dataset, **kw)
                # tuned model still predicts everything safe
                self.prob_fn = lambda alloc: 0.0

        manager = make_manager(BrokenTune())
        drive(manager, 60, alternate=True)  # violations continue in shadow
        assert manager.promotions == 0
        rejected = [e for e in manager.events
                    if isinstance(e, ModelEventRecord)
                    and e.event == EVENT_REJECTED]
        assert rejected and rejected[0].reason == "misprediction-rate"
        assert manager.incumbent_version == 1

    def test_retrain_failure_emits_rejection(self):
        def explode(seed):
            raise RuntimeError("no data")

        manager = make_manager(collect=explode)
        drive(manager, 20, alternate=True)
        rejected = [e for e in manager.events
                    if isinstance(e, ModelEventRecord)
                    and e.event == EVENT_REJECTED]
        assert rejected and rejected[0].reason == "retrain-failed"
        assert "no data" in rejected[0].detail
        assert manager.state == manager.STATE_MONITOR

    def test_detect_only_mode(self):
        manager = make_manager(collect=None)
        drive(manager, 30, alternate=True)
        assert manager.retrains == 0
        events = [e.event for e in manager.events
                  if isinstance(e, ModelEventRecord)]
        assert EVENT_DRIFT in events
        assert EVENT_RETRAIN_STARTED not in events

    def test_max_retrains_cap(self):
        manager = make_manager(
            retrain_config=RetrainConfig(
                delivery_intervals=2, shadow_intervals=4, max_retrains=1
            ),
            drift_config=DriftConfig(
                window=10, min_decisions=5, misprediction_rate=0.2, cooldown=5
            ),
            promote=False,
        )
        drive(manager, 80, alternate=True)
        assert manager.retrains == 1
        signals = [e for e in manager.events
                   if isinstance(e, ModelEventRecord)
                   and e.event == EVENT_DRIFT]
        assert len(signals) > 1  # drift keeps being recorded

    def test_reset_clears_episode_state(self):
        manager = make_manager()
        drive(manager, 20, alternate=True)
        assert manager.events
        manager.reset()
        assert manager.events == []
        assert manager.state == manager.STATE_MONITOR
        assert manager.shadow is None
        assert not manager.worker.busy

    def test_caller_registry_is_used_even_when_empty(self):
        # Regression: a fresh registry has __len__ == 0 and is falsy, so
        # `registry or ModelRegistry()` silently replaced it.
        registry = ModelRegistry()
        manager = make_manager(registry=registry)
        assert manager.registry is registry
        assert registry.active == 1  # initial model registered + promoted

    def test_events_mirrored_to_attached_audit_log(self):
        from repro.obs.recorder import ActiveRecorder, attach_recorder

        manager = make_manager()
        recorder = ActiveRecorder()
        attach_recorder(recorder, manager=manager)
        drive(manager, 20, alternate=True)
        assert recorder.audit_log.model_events()
        assert len(recorder.audit_log.decisions()) == 20


# ----------------------------------------------------------------------
# Bitwise shadow-equivalence suite (ISSUE acceptance criterion)
# ----------------------------------------------------------------------


def make_fault_cluster(users, seed, fault_profile=None):
    graph = make_tiny_graph()
    mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
    workload = Workload(graph, ConstantLoad(users), mix)
    faults = None
    if fault_profile is not None:
        faults = FaultInjector(
            resolve_profile(fault_profile), graph.n_tiers, seed=seed
        )
    return ClusterSimulator(graph, workload, seed=seed, faults=faults)


def run_traced_episode(manager, cluster, duration):
    """Run an episode recording every allocation the manager returned."""
    manager.reset()
    allocs = []
    for _ in range(duration):
        alloc = manager.decide(cluster.observed)
        allocs.append(None if alloc is None else alloc.copy())
        cluster.step(alloc)
    return allocs, cluster


class TestShadowEquivalence:
    """Shadow mode must be provably non-intrusive: the incumbent's
    decisions, the cluster trajectory, and the episode RNG are bitwise
    identical with the continuous-learning machinery on (promotion
    disabled) and with a plain SinanManager."""

    DURATION = 70
    USERS = 150
    SEED = 11

    def _continuous(self, trained, tiny_dataset):  # noqa: F811
        return ContinuousSinanManager(
            trained,
            QOS,
            collect=lambda seed: tiny_dataset,
            graph=make_tiny_graph(),
            drift_config=DriftConfig(
                window=10, min_decisions=5, calibration_frac=0.0,
                min_calibration_samples=3, cooldown=15,
            ),
            retrain_config=RetrainConfig(
                delivery_intervals=5, shadow_intervals=10, epochs=1
            ),
            promote=False,
        )

    @pytest.mark.parametrize("profile", [None, "chaos"])
    def test_bitwise_identical_to_plain_sinan(
        self, trained, tiny_dataset, profile  # noqa: F811
    ):
        plain = SinanManager(trained, QOS, make_tiny_graph())
        base_allocs, base_cluster = run_traced_episode(
            plain, make_fault_cluster(self.USERS, self.SEED, profile),
            self.DURATION,
        )

        manager = self._continuous(trained, tiny_dataset)
        cont_allocs, cont_cluster = run_traced_episode(
            manager, make_fault_cluster(self.USERS, self.SEED, profile),
            self.DURATION,
        )

        # The machinery actually engaged — the comparison is not vacuous.
        assert manager.retrains >= 1
        shadow_started = [
            e for e in manager.events
            if isinstance(e, ModelEventRecord)
            and e.event == EVENT_SHADOW_STARTED
        ]
        assert shadow_started
        assert manager.promotions == 0

        # Decision-for-decision bitwise equality.
        assert len(base_allocs) == len(cont_allocs)
        for a, b in zip(base_allocs, cont_allocs):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert np.array_equal(a, b)

        # Ground-truth trajectory and the manager's observed view.
        for log_a, log_b in (
            (base_cluster.telemetry, cont_cluster.telemetry),
            (base_cluster.observed, cont_cluster.observed),
        ):
            assert len(log_a) == len(log_b)
            for s_a, s_b in zip(log_a, log_b):
                assert np.array_equal(
                    s_a.latency_ms, s_b.latency_ms, equal_nan=True
                )
                assert np.array_equal(s_a.cpu_alloc, s_b.cpu_alloc)

        # Episode RNG consumed identically.
        assert (
            base_cluster.engine._rng.bit_generator.state
            == cont_cluster.engine._rng.bit_generator.state
        )


class TestPooledBoundaryCollection:
    """Boundary sweeps fan out over the process pool by default and stay
    bit-identical to serial, and the shadow loop stays non-intrusive
    when collection runs on worker processes."""

    COLLECT_KWARGS = dict(
        loads=(60.0, 150.0),
        seconds_per_load=20,
        cluster_factory=make_fault_cluster,
    )

    def _collector(self, jobs):
        from repro.harness.continuous import BoundaryCollector

        return BoundaryCollector(
            make_tiny_graph(), QOS, jobs=jobs, **self.COLLECT_KWARGS
        )

    def test_pooled_collection_bit_identical_to_serial(self):
        serial = self._collector(jobs=1)(5)
        pooled = self._collector(jobs=2)(5)
        for attr in ("X_RH", "X_LH", "X_RC", "y_lat", "y_viol"):
            np.testing.assert_array_equal(
                getattr(serial, attr), getattr(pooled, attr)
            )

    def test_default_jobs_resolution(self, monkeypatch):
        from repro.harness import continuous

        monkeypatch.setenv("REPRO_JOBS", "3")
        assert continuous._default_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert continuous._default_jobs() == 0  # one worker per CPU

    def test_shadow_non_intrusive_with_pooled_collection(self, trained):  # noqa: F811
        """Same bitwise gate as :class:`TestShadowEquivalence`, but the
        retrain worker's dataset really is collected on a 2-process
        pool while the live episode runs."""
        duration, users, seed = 70, 150, 11
        plain = SinanManager(trained, QOS, make_tiny_graph())
        base_allocs, base_cluster = run_traced_episode(
            plain, make_fault_cluster(users, seed), duration
        )

        manager = ContinuousSinanManager(
            trained,
            QOS,
            collect=self._collector(jobs=2),
            graph=make_tiny_graph(),
            drift_config=DriftConfig(
                window=10, min_decisions=5, calibration_frac=0.0,
                min_calibration_samples=3, cooldown=15,
            ),
            retrain_config=RetrainConfig(
                delivery_intervals=5, shadow_intervals=10, epochs=1
            ),
            promote=False,
        )
        cont_allocs, cont_cluster = run_traced_episode(
            manager, make_fault_cluster(users, seed), duration
        )

        # The pooled collection actually ran and produced a challenger.
        assert manager.retrains >= 1
        assert manager.worker.error is None

        for a, b in zip(base_allocs, cont_allocs):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert np.array_equal(a, b)
        assert (
            base_cluster.engine._rng.bit_generator.state
            == cont_cluster.engine._rng.bit_generator.state
        )
