"""Fast decision path vs reference path: bitwise-equivalence suite.

The shared-trunk CNN inference, compiled boosted trees, and zero-copy
candidate encoding are only shippable because they change nothing but
wall-clock time.  These tests pin that down at every level: encoder
tensors, predictor outputs, and full scheduler decision traces — on
clean telemetry and under the PR 2 fault profiles.
"""

import numpy as np
import pytest

from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.actions import ActionSpace
from repro.core.features import WindowEncoder, _ffill_time, sanitize_window
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.qos import QoSTarget
from repro.core.scheduler import OnlineScheduler
from repro.ml.cnn import CNNConfig
from repro.sim.cluster import ClusterSimulator
from repro.sim.faults import FaultInjector, resolve_profile
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_cluster, make_tiny_graph
from tests.sim.test_telemetry import make_stats

QOS = QoSTarget(200.0)
FAST = PredictorConfig(
    epochs=20,
    batch_size=64,
    cnn=CNNConfig(conv_channels=(4,), rh_embed=16, lh_embed=8, rc_embed=8, latent_dim=16),
)


def make_faulty_cluster(users: float, seed: int, profile: str) -> ClusterSimulator:
    graph = make_tiny_graph()
    mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
    workload = Workload(graph, ConstantLoad(users), mix)
    faults = FaultInjector(resolve_profile(profile), graph.n_tiers, seed=seed)
    return ClusterSimulator(graph, workload, seed=seed, faults=faults)


@pytest.fixture(scope="module")
def trained():
    config = CollectionConfig(qos=QOS)
    collector = DataCollector(
        lambda users, seed: make_tiny_cluster(users, seed), config
    )
    result = collector.collect(
        BanditExplorer(config, seed=0), loads=[60, 160, 280], seconds_per_load=80
    )
    predictor = HybridPredictor(make_tiny_graph(), QOS, FAST, seed=0)
    predictor.train(result.dataset)
    return predictor


@pytest.fixture()
def recorded_log(rng):
    cluster = make_tiny_cluster(users=150, seed=9)
    for _ in range(12):
        jitter = rng.uniform(-0.2, 0.2, cluster.n_tiers)
        cluster.step(cluster.clip_alloc(cluster.current_alloc + jitter))
    return cluster.telemetry


def candidate_batch(log, n_tiers, b, rng):
    base = np.asarray(log.latest.cpu_alloc, dtype=float)
    return np.clip(base + rng.uniform(-1.0, 1.0, (b, n_tiers)), 0.2, 8.0)


class TestEncoderEquivalence:
    def test_shared_matches_reference(self, recorded_log, rng):
        graph = make_tiny_graph()
        cands = candidate_batch(recorded_log, graph.n_tiers, 8, rng)
        ref_rh, ref_lh, ref_rc = WindowEncoder(graph, 5).encode_candidates(
            recorded_log, cands
        )
        x_rh, x_lh, x_rc = WindowEncoder(graph, 5).encode_candidates_shared(
            recorded_log, cands
        )
        assert x_rh.shape[0] == 1 and x_lh.shape[0] == 1
        assert np.array_equal(np.broadcast_to(x_rh, ref_rh.shape), ref_rh)
        assert np.array_equal(np.broadcast_to(x_lh, ref_lh.shape), ref_lh)
        assert np.array_equal(x_rc, ref_rc)

    def test_shared_matches_reference_with_nans(self, recorded_log, rng):
        graph = make_tiny_graph()
        # Corrupt telemetry in place: sanitize_window must repair both
        # paths identically.
        recorded_log.latest.cpu_util[:] = np.nan
        recorded_log[len(recorded_log) - 3].latency_ms[1] = np.inf
        cands = candidate_batch(recorded_log, graph.n_tiers, 8, rng)
        ref = WindowEncoder(graph, 5).encode_candidates(recorded_log, cands)
        fast = WindowEncoder(graph, 5).encode_candidates_shared(recorded_log, cands)
        assert np.array_equal(np.broadcast_to(fast[0], ref[0].shape), ref[0])
        assert np.array_equal(np.broadcast_to(fast[1], ref[1].shape), ref[1])
        assert np.isfinite(fast[0]).all() and np.isfinite(fast[1]).all()

    def test_incremental_cache_matches_fresh(self, rng):
        """The shift-by-one cache path equals a cold full rebuild."""
        graph = make_tiny_graph()
        cluster = make_tiny_cluster(users=120, seed=4)
        encoder = WindowEncoder(graph, 5)
        for _ in range(10):
            jitter = rng.uniform(-0.2, 0.2, cluster.n_tiers)
            cluster.step(cluster.clip_alloc(cluster.current_alloc + jitter))
            cached = encoder.encode_history(cluster.telemetry)
            fresh = WindowEncoder(graph, 5).encode_history(cluster.telemetry)
            assert np.array_equal(cached[0], fresh[0])
            assert np.array_equal(cached[1], fresh[1])

    def test_cache_invalidated_on_different_log(self, rng):
        """Switching episodes mid-life never leaks stale windows."""
        graph = make_tiny_graph()
        encoder = WindowEncoder(graph, 5)
        for seed in (1, 2):
            cluster = make_tiny_cluster(users=100, seed=seed)
            cluster.run(8)
            got = encoder.encode_history(cluster.telemetry)
            want = WindowEncoder(graph, 5).encode_history(cluster.telemetry)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])

    def test_ffill_matches_sanitize_window(self):
        """Tensor-level forward-fill == the window-local stats repair."""
        window = [make_stats(time=float(i)) for i in range(5)]
        window[0].tx_pps[:] = np.nan
        window[2].cpu_util[:] = np.nan
        window[3].cpu_util[0] = np.inf
        window[4].latency_ms[:] = np.nan
        clean = sanitize_window(window)
        ref_rh = np.stack([s.resource_matrix() for s in clean], axis=2)
        ref_lh = np.stack([s.latency_ms for s in clean], axis=0)
        raw_rh = np.stack([s.resource_matrix() for s in window], axis=2)
        raw_lh = np.stack([s.latency_ms for s in window], axis=0)
        assert np.array_equal(_ffill_time(raw_rh, axis=2), ref_rh)
        assert np.array_equal(_ffill_time(raw_lh, axis=0), ref_lh)


class TestPredictorEquivalence:
    @pytest.mark.parametrize("b", [1, 4, 64])
    def test_fast_matches_reference_bitwise(self, trained, recorded_log, rng, b):
        cands = candidate_batch(recorded_log, trained.graph.n_tiers, b, rng)
        lat_fast, prob_fast = trained.predict_candidates(recorded_log, cands)
        lat_ref, prob_ref = trained.predict_candidates_reference(recorded_log, cands)
        assert np.array_equal(lat_fast, lat_ref)
        assert np.array_equal(prob_fast, prob_ref)

    def test_fast_matches_reference_on_corrupted_window(self, trained, recorded_log, rng):
        recorded_log.latest.latency_ms[:] = np.nan
        recorded_log[len(recorded_log) - 2].cpu_util[:] = np.inf
        cands = candidate_batch(recorded_log, trained.graph.n_tiers, 16, rng)
        lat_fast, prob_fast = trained.predict_candidates(recorded_log, cands)
        lat_ref, prob_ref = trained.predict_candidates_reference(recorded_log, cands)
        assert np.array_equal(lat_fast, lat_ref)
        assert np.array_equal(prob_fast, prob_ref)

    def test_fast_path_toggle_dispatches_reference(self, trained, recorded_log, rng):
        cands = candidate_batch(recorded_log, trained.graph.n_tiers, 8, rng)
        try:
            trained.fast_path = False
            lat_off, prob_off = trained.predict_candidates(recorded_log, cands)
        finally:
            trained.fast_path = True
        lat_on, prob_on = trained.predict_candidates(recorded_log, cands)
        assert np.array_equal(lat_off, lat_on)
        assert np.array_equal(prob_off, prob_on)


class TestSchedulerTraceEquivalence:
    """Full-episode decision traces with the toggle on vs off.

    Decisions feed back into the simulator, so any divergence compounds
    — equality over a whole episode is the strongest end-to-end check.
    """

    def _run_trace(self, trained, fast: bool, cluster_factory) -> list:
        cluster = cluster_factory()
        graph = make_tiny_graph()
        space = ActionSpace(graph.min_alloc(), graph.max_alloc())
        scheduler = OnlineScheduler(trained, space, QOS)
        trained.fast_path = fast
        trained.encoder._cache = None
        trace = []
        for _ in range(20):
            cluster.step(cluster.current_alloc)
            alloc = scheduler.decide(cluster.observed)
            if alloc is not None:
                cluster.step(alloc)
                trace.append(np.asarray(alloc, dtype=float).copy())
        trace.append(np.asarray(scheduler.prediction_trace, dtype=object))
        return trace

    def _assert_identical(self, trained, cluster_factory):
        try:
            fast = self._run_trace(trained, True, cluster_factory)
            ref = self._run_trace(trained, False, cluster_factory)
        finally:
            trained.fast_path = True
        assert len(fast) == len(ref)
        for a, b in zip(fast[:-1], ref[:-1]):
            assert np.array_equal(a, b)
        for rec_a, rec_b in zip(fast[-1], ref[-1]):
            assert rec_a.keys() == rec_b.keys()
            for key in rec_a:
                va, vb = rec_a[key], rec_b[key]
                assert va == vb or (np.isnan(va) and np.isnan(vb))

    def test_trace_identical_clean(self, trained):
        self._assert_identical(
            trained, lambda: make_tiny_cluster(users=180, seed=21)
        )

    @pytest.mark.parametrize("profile", ["telemetry-dropout", "crash-storm"])
    def test_trace_identical_under_faults(self, trained, profile):
        self._assert_identical(
            trained, lambda: make_faulty_cluster(180, 23, profile)
        )


class TestTrainingEquivalenceUnderFaults:
    """Fast-path *training* on sanitized fault-corrupted data is a
    drop-in for the reference paths: the histogram grower reproduces the
    reference tree structure, and the im2col/fused CNN reproduces the
    reference loss trajectory — NaN-repaired windows (forward-filled
    plateaus, zero backfill, duplicated values) are exactly the
    tie-heavy inputs most likely to expose divergence."""

    @pytest.fixture(scope="class")
    def repaired(self):
        rng = np.random.default_rng(7)
        n, f, tiers, t, m = 240, 5, 4, 6, 5
        x_rh = rng.normal(2.0, 1.0, (n, f, tiers, t))
        x_lh = np.abs(rng.normal(100.0, 20.0, (n, t, m)))
        # Telemetry faults: whole dropped intervals, sporadic NaN/inf
        # channels — then the PR 2 repair (forward-fill over time).
        x_rh[np.broadcast_to(rng.random((n, 1, 1, t)) < 0.1, x_rh.shape)] = np.nan
        x_rh[rng.random(x_rh.shape) < 0.02] = np.inf
        x_lh[rng.random(x_lh.shape) < 0.05] = np.nan
        x_rh = _ffill_time(x_rh, axis=3)
        x_lh = _ffill_time(x_lh, axis=1)
        assert np.isfinite(x_rh).all() and np.isfinite(x_lh).all()
        x_rc = np.abs(rng.normal(2.0, 0.5, (n, tiers)))
        signal = x_rh[:, 0].mean(axis=(1, 2)) + 0.5 * x_rc.mean(axis=1)
        y_lat = 100.0 + 10.0 * np.repeat(signal[:, None], m, axis=1)
        y_viol = (
            signal + rng.normal(0.0, 0.3, n) > np.median(signal)
        ).astype(float)
        return (x_rh, x_lh, x_rc), y_lat, y_viol

    def test_tree_structures_match_reference(self, repaired):
        from repro.ml.boosted_trees import BoostedTrees, BoostedTreesConfig

        (x_rh, _, x_rc), _, y_viol = repaired
        X = np.concatenate([x_rh.reshape(len(x_rh), -1), x_rc], axis=1)
        config = BoostedTreesConfig(n_trees=30)

        def fit(fast):
            bt = BoostedTrees(config, seed=0)
            bt.fast_train = fast
            return bt.fit(X, y_viol)

        fast, ref = fit(True), fit(False)
        assert len(fast.trees) == len(ref.trees)

        def walk(a, b):
            assert (a is None) == (b is None)
            if a is None:
                return
            assert a.feature == b.feature
            if a.is_leaf:
                assert a.value == pytest.approx(b.value, abs=1e-10)
            else:
                assert a.threshold == b.threshold
            walk(a.left, b.left)
            walk(a.right, b.right)

        for ta, tb in zip(fast.trees, ref.trees):
            walk(ta, tb)
        assert np.array_equal(fast.predict_margin(X), ref.predict_margin(X))

    def test_cnn_loss_trajectory_matches_reference(self, repaired):
        from repro.ml.cnn import LatencyCNN

        inputs, y_lat, _ = repaired
        small = CNNConfig(
            conv_channels=(4,), rh_embed=16, lh_embed=8, rc_embed=8, latent_dim=16
        )

        def fit(fast):
            model = LatencyCNN(4, 6, 5, 5, config=small, seed=0)
            model.set_fast_train(fast)
            return model.fit(inputs, y_lat, epochs=4, batch_size=64, seed=3)

        fast, ref = fit(True), fit(False)
        assert fast.epochs_run == ref.epochs_run
        np.testing.assert_allclose(
            fast.train_loss, ref.train_loss, rtol=0, atol=1e-8
        )
