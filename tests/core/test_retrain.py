"""Incremental retraining tests (paper Section 5.4)."""

import numpy as np
import pytest

from repro.core.retrain import RetrainReport, fine_tune_predictor
from tests.core.test_predictor import FAST, QOS, trained, tiny_dataset  # noqa: F401
from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.sim.cluster import GCE_PLATFORM, ClusterSimulator
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_graph


@pytest.fixture(scope="module")
def gce_dataset():
    """Data from the same app on a noisier, slower platform."""
    graph = make_tiny_graph()
    mix = RequestMix.from_ratios({"Read": 9, "Write": 1})

    def factory(users, seed):
        return ClusterSimulator(
            graph,
            Workload(graph, ConstantLoad(users), mix),
            platform=GCE_PLATFORM,
            seed=seed,
        )

    config = CollectionConfig(qos=QOS)
    collector = DataCollector(factory, config)
    return collector.collect(
        BanditExplorer(config, seed=5), loads=[60, 200], seconds_per_load=60
    ).dataset


class TestFineTunePredictor:
    def test_report_structure(self, trained, gce_dataset):  # noqa: F811
        tuned, report = fine_tune_predictor(
            trained, gce_dataset, sample_counts=[20, 60], scenario="gce", epochs=2
        )
        assert isinstance(report, RetrainReport)
        assert report.scenario == "gce"
        assert report.sample_counts == [20, 60]
        assert len(report.val_rmse) == 2
        assert len(report.train_rmse) == 2
        assert report.base_rmse > 0
        assert report.converged_rmse() == report.val_rmse[-1]

    def test_returned_predictor_differs_from_original(self, trained, gce_dataset):  # noqa: F811
        tuned, _ = fine_tune_predictor(
            trained, gce_dataset, sample_counts=[40], epochs=2
        )
        moved = any(
            not np.allclose(a, b)
            for a, b in zip(tuned.cnn.params(), trained.cnn.params())
        )
        assert moved

    def test_original_predictor_untouched(self, trained, gce_dataset):  # noqa: F811
        before = [p.copy() for p in trained.cnn.params()]
        fine_tune_predictor(trained, gce_dataset, sample_counts=[30], epochs=1)
        for b, p in zip(before, trained.cnn.params()):
            np.testing.assert_allclose(b, p)

    def test_budget_exceeding_pool_rejected(self, trained, gce_dataset):  # noqa: F811
        with pytest.raises(ValueError, match="exceeds"):
            fine_tune_predictor(
                trained, gce_dataset, sample_counts=[10_000], epochs=1
            )

    def test_empty_budgets_rejected(self, trained, gce_dataset):  # noqa: F811
        with pytest.raises(ValueError, match="at least one"):
            fine_tune_predictor(trained, gce_dataset, sample_counts=[])

    def test_empty_report_converged_rmse(self):
        report = RetrainReport(scenario="x", base_rmse=42.0)
        assert report.converged_rmse() == 42.0
